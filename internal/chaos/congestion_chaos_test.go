package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"ntpscan/internal/cluster"
	"ntpscan/internal/core"
	"ntpscan/internal/store"
)

// Congested-fabric chaos: the campaign behind saturated link queues and
// mid-campaign route churn (SaturatedSpec). The oracle is unchanged
// from every other chaos leg — congestion may reshape the output, but
// it must never make it depend on worker count, node count, or where a
// checkpoint fell. `make chaos` runs this file as its own leg
// (-run 'Congested'); the first leg skips it to avoid double work.

// congestedNodeSpec merges SaturatedSpec's link layer onto the
// canonical node-loss schedule. Link draws come from their own derived
// stream, so the link plan here is bit-identical to SaturatedSpec's —
// the property that lets cluster runs share physics with the
// single-process baseline.
func congestedNodeSpec(nodes, kills int) Spec {
	s := NodeLossSpec(nodes, kills)
	l := SaturatedSpec()
	s.CongestedVantages = l.CongestedVantages
	s.CongestedPrefixes = l.CongestedPrefixes
	s.LinkQueuePkts = l.LinkQueuePkts
	s.LinkBytesPerSec = l.LinkBytesPerSec
	s.LinkPropDelay = l.LinkPropDelay
	s.LinkUtilization = l.LinkUtilization
	s.LinkJitter = l.LinkJitter
	s.RouteChurns = l.RouteChurns
	s.ChurnDownSlices = l.ChurnDownSlices
	return s
}

// requireCongestion asserts the campaign actually ran through the link
// layer: exchanges traversed queues, and the saturated plan cost some
// of them (tail drops, churn drops, or late deliveries).
func requireCongestion(t *testing.T, p *core.Pipeline) {
	t.Helper()
	enq, _ := p.Obs.Value("link_enqueued_total")
	if enq == 0 {
		t.Fatal("saturated plan never traversed a link — the congested leg is vacuous")
	}
	tail, _ := p.Obs.Value("link_dropped_tail_total")
	churn, _ := p.Obs.Value("link_dropped_churn_total")
	late, _ := p.Obs.Value("link_late_total")
	if tail+churn+late == 0 {
		t.Fatalf("saturated plan cost nothing: enqueued %d, no drops, no late", enq)
	}
	t.Logf("link: enqueued %d, tail %d, churn %d, late %d", enq, tail, churn, late)
}

// Byte-identity across worker counts under saturated queues and route
// churn — the tentpole's first determinism oracle.
func TestCongestedCampaignDeterministicAcrossWorkers(t *testing.T) {
	NoGoroutineLeaks(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(workers int) (*core.Pipeline, *bytes.Buffer, string) {
				cfg := chaosConfig(seed)
				cfg.Workers = workers
				dir := t.TempDir()
				p := faultedPipeline(cfg, seed+1, SaturatedSpec())
				st, err := store.Open(dir, store.Options{Obs: p.Obs})
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Out: &out, Store: st}); err != nil {
					t.Fatal(err)
				}
				return p, &out, storeDigest(t, dir)
			}
			p1, out1, store1 := run(1)
			if out1.Len() == 0 {
				t.Fatal("congested campaign produced no output")
			}
			requireCongestion(t, p1)
			stats1 := fmt.Sprintf("%+v", p1.Summary.Stats())
			for _, workers := range []int{3, 8} {
				p, out, sd := run(workers)
				if !bytes.Equal(out.Bytes(), out1.Bytes()) {
					t.Errorf("workers=%d congested JSONL diverges (%d vs %d bytes)", workers, out.Len(), out1.Len())
				}
				if sd != store1 {
					t.Errorf("workers=%d congested store directory diverges", workers)
				}
				if got := fmt.Sprintf("%+v", p.Summary.Stats()); got != stats1 {
					t.Errorf("workers=%d Summary diverges:\n got %s\nwant %s", workers, got, stats1)
				}
				if p.Captures != p1.Captures {
					t.Errorf("workers=%d Captures = %d, want %d", workers, p.Captures, p1.Captures)
				}
			}
		})
	}
}

// Kill-and-resume under congestion: the regenerated plan (same
// arguments, fresh pipeline) must reproduce the remaining output
// byte-for-byte even though queue draws fold the instant and churn
// epoch into every hash.
func TestCongestedResumeReproducesOutput(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := SaturatedSpec()

			var full bytes.Buffer
			var cps []*core.Checkpoint
			p1 := faultedPipeline(chaosConfig(seed), seed+1, spec)
			_, err := p1.RunCampaign(context.Background(), core.CampaignOpts{
				Out:             &full,
				CheckpointEvery: 24,
				OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
			})
			if err != nil {
				t.Fatal(err)
			}
			requireCongestion(t, p1)
			if len(cps) < 2 {
				t.Fatalf("expected >=2 checkpoints, got %d", len(cps))
			}

			blob, err := json.Marshal(cps[1])
			if err != nil {
				t.Fatal(err)
			}
			var cp core.Checkpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				t.Fatal(err)
			}

			var rest bytes.Buffer
			p2 := faultedPipeline(chaosConfig(seed), seed+1, spec)
			if _, err := p2.ResumeCampaign(context.Background(), &cp, core.CampaignOpts{Out: &rest}); err != nil {
				t.Fatal(err)
			}

			want := full.Bytes()[cp.OutOffset:]
			if !bytes.Equal(rest.Bytes(), want) {
				t.Fatalf("congested resume diverges: %d bytes vs %d expected", rest.Len(), len(want))
			}
			if p2.Captures != p1.Captures {
				t.Errorf("resumed Captures = %d, want %d", p2.Captures, p1.Captures)
			}
			if got, wantS := fmt.Sprintf("%+v", p2.Summary.Stats()), fmt.Sprintf("%+v", p1.Summary.Stats()); got != wantS {
				t.Errorf("resumed Summary diverges:\n got %s\nwant %s", got, wantS)
			}
		})
	}
}

// Nodes=1/3/8 under saturated links, node loss, and route churn — and
// because link draws are independent of node-fault draws, all of them
// must also match the single-process SaturatedSpec baseline.
func TestCongestedClusterByteIdenticalAcrossNodes(t *testing.T) {
	NoGoroutineLeaks(t)
	seed := chaosSeeds(t)[0]

	var want bytes.Buffer
	base := faultedPipeline(chaosConfig(seed), seed+1, SaturatedSpec())
	if _, err := base.RunCampaign(context.Background(), core.CampaignOpts{Out: &want}); err != nil {
		t.Fatal(err)
	}
	requireCongestion(t, base)

	for _, nodes := range []int{1, 3, 8} {
		var got bytes.Buffer
		p := faultedPipeline(chaosConfig(seed), seed+1, congestedNodeSpec(nodes, 1))
		if _, _, err := cluster.Run(context.Background(), p, cluster.Config{Nodes: nodes},
			core.CampaignOpts{Out: &got}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("nodes=%d: congested cluster JSONL diverges from single-process run (%d vs %d bytes)",
				nodes, got.Len(), want.Len())
		}
	}
}

// The link plan itself is pure data: regenerating it from the same
// (pipeline config, seed, spec) encodes to identical bytes, and the
// saturated spec actually populates every schedule it promises.
func TestCongestedLinkPlanRegenerationIdentical(t *testing.T) {
	seed := chaosSeeds(t)[0]
	p := core.NewPipeline(chaosConfig(seed))
	a := PlanFor(p, seed+1, SaturatedSpec())
	b := PlanFor(p, seed+1, SaturatedSpec())
	if a.Links == nil || b.Links == nil {
		t.Fatal("SaturatedSpec produced no link plan")
	}
	ea, err := a.Links.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Links.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("regenerated link plan diverges:\n%s\n%s", ea, eb)
	}
	if len(a.Links.Vantages) == 0 || len(a.Links.Prefixes) == 0 || len(a.Links.Churn) == 0 {
		t.Fatalf("saturated plan is missing schedules: %d vantages, %d prefixes, %d churn events",
			len(a.Links.Vantages), len(a.Links.Prefixes), len(a.Links.Churn))
	}
}
