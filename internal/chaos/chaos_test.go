package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/netip"
	"testing"

	"ntpscan/internal/analysis"
	"ntpscan/internal/core"
	"ntpscan/internal/zgrab"
)

// The scenario matrix lives in hooks.go (exported, shared with the
// observability invariant suite); these aliases keep the tests terse.

func chaosSeeds(t *testing.T) []uint64 { return Seeds() }

func chaosConfig(seed uint64) core.Config { return Config(seed) }

func faultedPipeline(cfg core.Config, planSeed uint64, spec Spec) *core.Pipeline {
	return FaultedPipeline(cfg, planSeed, spec)
}

func digest(t *testing.T, d *analysis.Dataset) uint64 {
	t.Helper()
	h := fnv.New64a()
	for _, r := range d.Results {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

func successStats(d *analysis.Dataset) (total int, distinct int) {
	ips := make(map[netip.Addr]struct{})
	for _, r := range d.Results {
		if r.Success() {
			total++
			ips[r.IP] = struct{}{}
		}
	}
	return total, len(ips)
}

// The faulted campaign must be exactly as replayable as a clean one:
// same (seed, plan, shards) at any worker count is bit-identical.
func TestFaultedCampaignDeterministicAcrossWorkers(t *testing.T) {
	NoGoroutineLeaks(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(workers int) (*core.Pipeline, *analysis.Dataset) {
				cfg := chaosConfig(seed)
				cfg.Workers = workers
				p := faultedPipeline(cfg, seed+1, DefaultSpec())
				ds, err := p.RunCampaign(context.Background(), core.CampaignOpts{})
				if err != nil {
					t.Fatal(err)
				}
				return p, ds
			}
			p1, d1 := run(1)
			if len(d1.Results) == 0 {
				t.Fatal("faulted campaign produced no results")
			}
			base := digest(t, d1)
			stats1 := fmt.Sprintf("%+v", p1.Summary.Stats())
			for _, workers := range []int{3, 8} {
				p, d := run(workers)
				if got := digest(t, d); got != base {
					t.Errorf("workers=%d faulted dataset digest %x, want %x", workers, got, base)
				}
				if got := fmt.Sprintf("%+v", p.Summary.Stats()); got != stats1 {
					t.Errorf("workers=%d Summary diverges:\n got %s\nwant %s", workers, got, stats1)
				}
				if p.Captures != p1.Captures {
					t.Errorf("workers=%d Captures = %d, want %d", workers, p.Captures, p1.Captures)
				}
			}
		})
	}
}

// The convergence criterion: a campaign run under the default fault
// plan, with retries and the self-healing responsive channel, lands
// within tolerance of the clean campaign — both in scan successes and
// in distinct responsive addresses. The 25% tolerance is documented in
// EXPERIMENTS.md; vantage blackouts genuinely erase a slice of the
// volume channel, so exact equality is not expected.
func TestFaultedConvergesToClean(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clean := core.NewPipeline(chaosConfig(seed))
			cds, err := clean.RunCampaign(context.Background(), core.CampaignOpts{})
			if err != nil {
				t.Fatal(err)
			}
			faulted := faultedPipeline(chaosConfig(seed), seed+1, DefaultSpec())
			fds, err := faulted.RunCampaign(context.Background(), core.CampaignOpts{})
			if err != nil {
				t.Fatal(err)
			}

			ct, cd := successStats(cds)
			ft, fd := successStats(fds)
			if ct == 0 {
				t.Fatal("clean campaign found nothing")
			}
			t.Logf("clean: %d successes / %d distinct; faulted: %d / %d", ct, cd, ft, fd)
			within := func(name string, clean, faulted int) {
				lo := float64(clean) * 0.75
				hi := float64(clean) * 1.25
				if f := float64(faulted); f < lo || f > hi {
					t.Errorf("%s: faulted %d outside 25%% of clean %d", name, faulted, clean)
				}
			}
			within("successes", ct, ft)
			within("distinct responsive IPs", cd, fd)
		})
	}
}

// Retries must actually help: under the same plan, a single-attempt
// scanner finds no more than the retrying one.
func TestRetriesRecoverLosses(t *testing.T) {
	seed := chaosSeeds(t)[0]
	spec := DefaultSpec()
	run := func(retry *zgrab.RetryPolicy) int {
		cfg := chaosConfig(seed)
		cfg.Retry = retry
		p := faultedPipeline(cfg, seed+1, spec)
		ds, err := p.RunCampaign(context.Background(), core.CampaignOpts{})
		if err != nil {
			t.Fatal(err)
		}
		total, _ := successStats(ds)
		return total
	}
	single := run(nil)
	retried := run(zgrab.DefaultRetryPolicy())
	t.Logf("successes: single-attempt %d, with retries %d", single, retried)
	if retried < single {
		t.Fatalf("retries lost results: %d with vs %d without", retried, single)
	}
}

// Kill-and-resume under faults: resuming a fresh pipeline (same
// config, same regenerated plan) from a mid-campaign checkpoint
// reproduces the uninterrupted run's remaining JSONL output
// byte-for-byte, and converges to identical collection statistics.
func TestResumeUnderFaultsReproducesOutput(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := DefaultSpec()

			var full bytes.Buffer
			var cps []*core.Checkpoint
			p1 := faultedPipeline(chaosConfig(seed), seed+1, spec)
			d1, err := p1.RunCampaign(context.Background(), core.CampaignOpts{
				Out:             &full,
				CheckpointEvery: 24,
				OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(cps) < 2 {
				t.Fatalf("expected >=2 checkpoints, got %d", len(cps))
			}

			// Round-trip the middle checkpoint through JSON — a real
			// kill+resume goes through disk.
			blob, err := json.Marshal(cps[1])
			if err != nil {
				t.Fatal(err)
			}
			var cp core.Checkpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				t.Fatal(err)
			}

			var rest bytes.Buffer
			p2 := faultedPipeline(chaosConfig(seed), seed+1, spec)
			d2, err := p2.ResumeCampaign(context.Background(), &cp, core.CampaignOpts{Out: &rest})
			if err != nil {
				t.Fatal(err)
			}

			want := full.Bytes()[cp.OutOffset:]
			if !bytes.Equal(rest.Bytes(), want) {
				t.Fatalf("resumed output diverges: %d bytes vs %d expected", rest.Len(), len(want))
			}
			if p2.Captures != p1.Captures {
				t.Errorf("resumed Captures = %d, want %d", p2.Captures, p1.Captures)
			}
			if got, want := fmt.Sprintf("%+v", p2.Summary.Stats()), fmt.Sprintf("%+v", p1.Summary.Stats()); got != want {
				t.Errorf("resumed Summary diverges:\n got %s\nwant %s", got, want)
			}
			// The resumed dataset holds the tail; its results must match
			// the full run's tail result-for-result.
			tail := d1.Results[len(d1.Results)-len(d2.Results):]
			for i, r := range d2.Results {
				a, _ := json.Marshal(r)
				b, _ := json.Marshal(tail[i])
				if !bytes.Equal(a, b) {
					t.Fatalf("resumed result %d diverges:\n got %s\nwant %s", i, a, b)
				}
			}
		})
	}
}
