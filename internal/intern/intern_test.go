package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestBytesAndStringCanonicalise(t *testing.T) {
	tab := New()
	a := tab.Bytes([]byte("fritzbox"))
	b := tab.Bytes([]byte("fritzbox"))
	if a != "fritzbox" || b != "fritzbox" {
		t.Fatalf("got %q, %q", a, b)
	}
	// Same backing storage: interning returns the canonical instance.
	if &a == nil || tab.String("fritzbox") != a {
		t.Fatal("String did not return the canonical instance")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	if tab.Bytes(nil) != "" || tab.String("") != "" {
		t.Fatal("empty values must intern to the empty string")
	}
}

func TestConcurrentIntern(t *testing.T) {
	tab := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s := fmt.Sprintf("value-%d", i%100)
				if got := tab.String(s); got != s {
					t.Errorf("intern(%q) = %q", s, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tab.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tab.Len())
	}
}

func TestBytesHitPathDoesNotAllocate(t *testing.T) {
	tab := New()
	key := []byte("abcdef0123456789")
	tab.Bytes(key) // warm
	allocs := testing.AllocsPerRun(100, func() {
		tab.Bytes(key)
	})
	if allocs != 0 {
		t.Fatalf("interned lookup allocated %v times per run", allocs)
	}
}
