// Package intern provides a concurrency-safe string intern table.
//
// The scan and analysis layers handle millions of results whose string
// fields draw from tiny vocabularies: certificate fingerprints repeat
// per device image, SSH identification strings per firmware, HTML
// titles per product line, country codes per vantage. Without
// interning, every grab and every JSONL re-read materialises its own
// copy; with it, each distinct value is allocated once and every
// subsequent occurrence is a pointer to the same backing bytes.
//
// Interning only ever substitutes an equal string, so it is invisible
// to output bytes — see DESIGN.md "Memory discipline".
package intern

import "sync"

// tableShards is the fixed shard count. A power of two so the hash can
// be masked; 64 keeps lock contention negligible at scanner worker
// counts without bloating the table for small runs.
const tableShards = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

// Table is a sharded intern table. The zero value is not usable; call
// New (or use the package-level Default).
type Table struct {
	shards [tableShards]shard
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]string)
	}
	return t
}

// Default is the process-wide table shared by zgrab and analysis. Its
// entries live for the process; the vocabulary it holds is bounded by
// the world's device diversity, not by the number of results.
var Default = New()

// fnv1a hashes b for shard selection (FNV-1a, inlined to keep the hot
// path free of hash.Hash allocations).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// Bytes returns the canonical string equal to b, allocating it only on
// first sight. The fast path — value already interned — performs no
// allocation: the map lookup uses Go's string(b) lookup optimisation.
func (t *Table) Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := &t.shards[fnv1a(b)&(tableShards-1)]
	sh.mu.RLock()
	s, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	if s, ok = sh.m[string(b)]; !ok {
		s = string(b)
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}

// String returns the canonical instance equal to s. Unlike Bytes it
// cannot avoid the caller's original allocation, but it drops the
// duplicate immediately, so retained memory stays one copy per
// distinct value.
func (t *Table) String(s string) string {
	if s == "" {
		return ""
	}
	sh := &t.shards[fnv1aString(s)&(tableShards-1)]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		c = s
		sh.m[c] = c
	}
	sh.mu.Unlock()
	return c
}

func fnv1aString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Len returns the number of distinct strings held.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
