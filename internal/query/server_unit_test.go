package query

import (
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	"ntpscan/internal/store"
)

// These are white-box unit tests for the request-parsing and
// degraded-configuration branches; the black-box end-to-end coverage
// lives in query_test.go.

func TestParsePred(t *testing.T) {
	cases := []struct {
		url     string
		want    store.Pred
		limit   int
		errPart string
	}{
		{url: "/v1/query", want: store.Pred{}},
		{url: "/v1/query?kind=captures", want: store.Pred{Kind: store.KindCaptures}},
		{url: "/v1/query?kind=results", want: store.Pred{Kind: store.KindResults}},
		{url: "/v1/query?kind=bogus", errPart: "bad kind"},
		{url: "/v1/query?module=http&module=ssh", want: store.Pred{Modules: []string{"http", "ssh"}}},
		{url: "/v1/query?vantage=DE", want: store.Pred{Vantages: []string{"DE"}}},
		{url: "/v1/query?prefix=2001:db8::1/48", want: store.Pred{Prefix: netip.MustParsePrefix("2001:db8::/48")}},
		{url: "/v1/query?prefix=nonsense", errPart: "bad prefix"},
		{url: "/v1/query?slice_lo=3", want: store.Pred{Slices: &store.SliceRange{Lo: 3, Hi: 1 << 30}}},
		{url: "/v1/query?slice_hi=9", want: store.Pred{Slices: &store.SliceRange{Lo: 0, Hi: 9}}},
		{url: "/v1/query?slice_lo=2&slice_hi=5", want: store.Pred{Slices: &store.SliceRange{Lo: 2, Hi: 5}}},
		{url: "/v1/query?slice_lo=x", errPart: "bad slice_lo"},
		{url: "/v1/query?slice_hi=x", errPart: "bad slice_hi"},
		{url: "/v1/query?limit=17", want: store.Pred{}, limit: 17},
		{url: "/v1/query?limit=-1", errPart: "bad limit"},
		{url: "/v1/query?limit=x", errPart: "bad limit"},
	}
	for _, tc := range cases {
		pred, limit, err := parsePred(httptest.NewRequest("GET", tc.url, nil))
		if tc.errPart != "" {
			if err == nil || !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("%s: err = %v, want %q", tc.url, err, tc.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.url, err)
			continue
		}
		if limit != tc.limit {
			t.Errorf("%s: limit = %d, want %d", tc.url, limit, tc.limit)
		}
		if pred.Kind != tc.want.Kind || pred.Prefix != tc.want.Prefix {
			t.Errorf("%s: pred = %+v, want %+v", tc.url, pred, tc.want)
		}
		if strings.Join(pred.Modules, ",") != strings.Join(tc.want.Modules, ",") ||
			strings.Join(pred.Vantages, ",") != strings.Join(tc.want.Vantages, ",") {
			t.Errorf("%s: pred = %+v, want %+v", tc.url, pred, tc.want)
		}
		if (pred.Slices == nil) != (tc.want.Slices == nil) {
			t.Errorf("%s: slices = %v, want %v", tc.url, pred.Slices, tc.want.Slices)
		} else if pred.Slices != nil && *pred.Slices != *tc.want.Slices {
			t.Errorf("%s: slices = %v, want %v", tc.url, *pred.Slices, *tc.want.Slices)
		}
	}
}

func TestServerDegraded(t *testing.T) {
	// A server with neither store nor aggregates must answer every
	// endpoint with a clean error, not a panic.
	srv := NewServer(nil, nil, nil)
	h := srv.Handler()
	for _, url := range []string{
		"/v1/tables/modules", "/v1/tables/table2", "/v1/tables/vantages",
		"/v1/tables/slices", "/v1/tables/prefixes", "/v1/query",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 503 {
			t.Errorf("%s: code = %d, want 503", url, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "error") {
			t.Errorf("%s: body = %s", url, rec.Body.String())
		}
	}
	// /metrics still works: the private registry serves the queryd
	// families even with nothing attached.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "queryd_requests_total") {
		t.Errorf("/metrics: %d %s", rec.Code, rec.Body.String())
	}
}

func TestPrefixesBadN(t *testing.T) {
	srv := NewServer(nil, NewAggregates(), nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tables/prefixes?n=x", nil))
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "bad n") {
		t.Errorf("prefixes?n=x: %d %s", rec.Code, rec.Body.String())
	}
}

func TestRowCount(t *testing.T) {
	if n := rowCount([]ModuleRow{{}, {}}); n != 2 {
		t.Errorf("ModuleRow: %d", n)
	}
	if n := rowCount([]VantageRow{{}}); n != 1 {
		t.Errorf("VantageRow: %d", n)
	}
	if n := rowCount([]SliceRow{{}, {}, {}}); n != 3 {
		t.Errorf("SliceRow: %d", n)
	}
	if n := rowCount([]PrefixRow{}); n != 0 {
		t.Errorf("PrefixRow: %d", n)
	}
	if n := rowCount("not a table"); n != 0 {
		t.Errorf("default: %d", n)
	}
}

func TestAggregatesRestoreRejectsBadState(t *testing.T) {
	for _, raw := range []string{
		`{"modules":{"http":{"addrs":["not-an-addr"]}}}`,
		`{"vantages":{"DE":{"addrs":["nope"]}}}`,
		`{"nets48":{"bogus-prefix":{}}}`,
		`{"nets48":{"2001:db8::/48":{"addrs":["bad"]}}}`,
		`{"slices":{"notanint":{}}}`,
		`{"table2":[{}]}`,
	} {
		a := NewAggregates()
		if err := a.Restore([]byte(raw)); err == nil {
			t.Errorf("Restore(%s) accepted", raw)
		}
	}
}
