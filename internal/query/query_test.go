package query_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntpscan/internal/chaos"
	"ntpscan/internal/core"
	"ntpscan/internal/query"
	"ntpscan/internal/store"
	"ntpscan/internal/world"
	"ntpscan/internal/zgrab"
)

func campaignConfig(seed uint64, workers int) core.Config {
	return core.Config{
		Seed: seed,
		World: world.Config{
			DeviceScale: 1e-3,
			AddrScale:   1e-6,
			ASScale:     0.02,
		},
		Workers:       workers,
		CaptureBudget: 2000,
	}
}

// TestAggregatesBitIdenticalAcrossWorkersAndFromStore is the central
// consistency oracle: the aggregator fed incrementally at every drain
// barrier must snapshot to the exact bytes of an aggregator recomputed
// from a full scan of the finished store — and both must be invariant
// across worker counts.
func TestAggregatesBitIdenticalAcrossWorkersAndFromStore(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 3, 8} {
		p := core.NewPipeline(campaignConfig(47, workers))
		st, err := store.Open(t.TempDir(), store.Options{Obs: p.Obs})
		if err != nil {
			t.Fatal(err)
		}
		agg := query.NewAggregates()
		if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Store: st, Aggregates: agg}); err != nil {
			t.Fatal(err)
		}
		live, err := agg.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = live
		} else if !bytes.Equal(live, want) {
			t.Fatalf("workers=%d: incremental aggregate snapshot diverges across worker counts", workers)
		}
		recomputed, err := query.FromStore(st)
		if err != nil {
			t.Fatal(err)
		}
		full, err := recomputed.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(live, full) {
			t.Fatalf("workers=%d: incremental snapshot != full-store recompute", workers)
		}
	}
}

// TestAggregatesCheckpointResume interrupts a campaign at a checkpoint
// and resumes it with a fresh aggregator restored from the checkpoint:
// the final snapshot must equal the uninterrupted run's byte-for-byte.
func TestAggregatesCheckpointResume(t *testing.T) {
	cfg := campaignConfig(48, 16)

	fullDir, crashDir := t.TempDir(), t.TempDir()
	var cps []*core.Checkpoint
	p1 := core.NewPipeline(cfg)
	st1, err := store.Open(fullDir, store.Options{Obs: p1.Obs})
	if err != nil {
		t.Fatal(err)
	}
	agg1 := query.NewAggregates()
	_, err = p1.RunCampaign(context.Background(), core.CampaignOpts{
		Store:           st1,
		Aggregates:      agg1,
		CheckpointEvery: 24,
		OnCheckpoint: func(cp *core.Checkpoint) {
			cps = append(cps, cp)
			if len(cps) == 3 {
				copyDir(t, fullDir, crashDir)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 3 {
		t.Fatalf("expected 3 checkpoints, got %d", len(cps))
	}
	want, err := agg1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cp := cps[0]
	if cp.Aggregates == nil {
		t.Fatal("checkpoint carries no aggregate snapshot")
	}
	// JSON round-trip: checkpoints cross process boundaries as files.
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Checkpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	p2 := core.NewPipeline(cfg)
	st2, err := store.Open(crashDir, store.Options{Obs: p2.Obs})
	if err != nil {
		t.Fatal(err)
	}
	agg2 := query.NewAggregates()
	if _, err := p2.ResumeCampaign(context.Background(), &back, core.CampaignOpts{Store: st2, Aggregates: agg2}); err != nil {
		t.Fatal(err)
	}
	got, err := agg2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed aggregate snapshot diverges from uninterrupted run")
	}

	// An aggregator attached to a checkpoint without an aggregate
	// section must be rejected, not silently started empty.
	back.Aggregates = nil
	p3 := core.NewPipeline(cfg)
	if _, err := p3.ResumeCampaign(context.Background(), &back, core.CampaignOpts{Aggregates: query.NewAggregates()}); err == nil {
		t.Fatal("resume accepted a checkpoint with no aggregate snapshot")
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// ---- HTTP endpoint tests over a hand-built store ----

var queryMods = []string{"http", "https", "ssh", "mqtt"}

func mkAddr(i int) netip.Addr {
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = 0x0d, 0xb8
	b[4] = byte(i >> 8)
	b[5] = byte(i)
	b[15] = byte(i*7 + 1)
	return netip.AddrFrom16(b)
}

func mkResult(i, slice int) *zgrab.Result {
	r := &zgrab.Result{
		IP:     mkAddr(i),
		Module: queryMods[i%len(queryMods)],
		Port:   uint16(80 + i%3),
		Time:   time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC).Add(time.Duration(slice*1000+i) * time.Millisecond),
		Status: zgrab.StatusSuccess,
		Seq:    int64(slice*10000 + i),
	}
	if i%5 == 0 {
		r.Status = zgrab.StatusTimeout
		r.Error = "i/o timeout"
	}
	if r.Module == "https" {
		r.TLS = &zgrab.TLSGrab{Version: "TLSv1.3", HandshakeOK: true, CertFingerprint: fmt.Sprintf("fp-%d", i%6)}
	}
	return r
}

func buildStore(t testing.TB, dir string, slices, rowsPer int) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vans := []string{"DE", "US", "JP"}
	for sl := 0; sl < slices; sl++ {
		var caps []store.CaptureRow
		var results []*zgrab.Result
		for i := 0; i < rowsPer; i++ {
			caps = append(caps, store.CaptureRow{Addr: mkAddr(sl*rowsPer + i), Vantage: vans[i%len(vans)]})
			results = append(results, mkResult(sl*rowsPer+i, sl))
		}
		if err := st.AppendSlice(sl, caps, results); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func getJSON(t testing.TB, url string, out any) *query.Stats {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	var env struct {
		Data  json.RawMessage `json:"data"`
		Stats *query.Stats    `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(env.Data, out); err != nil {
			t.Fatal(err)
		}
	}
	return env.Stats
}

func TestServerEndpoints(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	st := buildStore(t, t.TempDir(), 6, 200)
	agg, err := query.FromStore(st)
	if err != nil {
		t.Fatal(err)
	}
	srv := query.NewServer(st, agg, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mods []query.ModuleRow
	stats := getJSON(t, ts.URL+"/v1/tables/modules", &mods)
	if len(mods) != len(queryMods) {
		t.Fatalf("modules rows = %d, want %d", len(mods), len(queryMods))
	}
	if stats.Rows != int64(len(mods)) || stats.ElapsedNs < 0 {
		t.Fatalf("modules stats = %+v", stats)
	}
	for i := 1; i < len(mods); i++ {
		if mods[i-1].Module >= mods[i].Module {
			t.Fatalf("modules not sorted: %+v", mods)
		}
	}

	var t2 []map[string]any
	getJSON(t, ts.URL+"/v1/tables/table2", &t2)
	if len(t2) != 5 {
		t.Fatalf("table2 rows = %d, want 5", len(t2))
	}

	var vans []query.VantageRow
	getJSON(t, ts.URL+"/v1/tables/vantages", &vans)
	if len(vans) != 3 {
		t.Fatalf("vantage rows = %d, want 3", len(vans))
	}

	var pfx []query.PrefixRow
	getJSON(t, ts.URL+"/v1/tables/prefixes?n=5", &pfx)
	if len(pfx) != 5 {
		t.Fatalf("prefix rows = %d, want 5", len(pfx))
	}
	for i := 1; i < len(pfx); i++ {
		if pfx[i-1].Addrs < pfx[i].Addrs {
			t.Fatalf("prefixes not sorted by addrs: %+v", pfx)
		}
	}

	var slices []query.SliceRow
	getJSON(t, ts.URL+"/v1/tables/slices", &slices)
	if len(slices) != 6 {
		t.Fatalf("slice rows = %d, want 6", len(slices))
	}

	// Ad-hoc query with module pushdown: only http results, and the
	// sparse index must have skipped blocks.
	var rows []query.QueryRow
	qstats := getJSON(t, ts.URL+"/v1/query?kind=results&module=http", &rows)
	if len(rows) == 0 {
		t.Fatal("no http rows")
	}
	for _, r := range rows {
		if r.Kind != "result" || r.Result == nil || r.Result.Module != "http" {
			t.Fatalf("pushdown leaked row %+v", r)
		}
	}
	if qstats.BlocksSkipped == 0 {
		t.Fatalf("expected block skipping, stats = %+v", qstats)
	}

	// Same query again: the decoded-block cache must absorb it.
	warm := getJSON(t, ts.URL+"/v1/query?kind=results&module=http", &rows)
	if warm.CacheHits == 0 || warm.CacheMisses != 0 {
		t.Fatalf("warm query not served from cache: %+v", warm)
	}

	// Truncation.
	var few []query.QueryRow
	tstats := getJSON(t, ts.URL+"/v1/query?limit=7", &few)
	if len(few) != 7 || !tstats.Truncated {
		t.Fatalf("limit: rows=%d truncated=%v", len(few), tstats.Truncated)
	}

	// Exact-/48 prefix query stays inside the prefix.
	p48 := netip.PrefixFrom(mkAddr(3), 48).Masked()
	var inPfx []query.QueryRow
	getJSON(t, ts.URL+"/v1/query?prefix="+p48.String(), &inPfx)
	if len(inPfx) == 0 {
		t.Fatal("prefix query returned nothing")
	}
	for _, r := range inPfx {
		a, err := netip.ParseAddr(r.Addr)
		if err != nil || !p48.Contains(a) {
			t.Fatalf("prefix query leaked %s outside %s", r.Addr, p48)
		}
	}

	// Errors.
	for _, bad := range []string{
		"/v1/query?kind=bogus",
		"/v1/query?prefix=not-a-prefix",
		"/v1/query?limit=x",
		"/v1/tables/prefixes?n=x",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Metrics exposition carries the queryd families.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"queryd_requests_total", "queryd_latency_ns", "queryd_rows_total"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestServeDuringCampaign serves queries while a campaign is writing
// into the same store and feeding the same aggregates — the live-
// serving configuration queryd runs in. Under -race this is the
// end-to-end reader-while-writer oracle; at the end, the incremental
// aggregates must still equal a full recompute.
func TestServeDuringCampaign(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	p := core.NewPipeline(campaignConfig(49, 8))
	st, err := store.Open(t.TempDir(), store.Options{Obs: p.Obs})
	if err != nil {
		t.Fatal(err)
	}
	agg := query.NewAggregates()
	srv := query.NewServer(st, agg, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	urls := []string{
		"/v1/tables/modules",
		"/v1/tables/table2",
		"/v1/tables/prefixes?n=10",
		"/v1/query?kind=results&module=ssh&limit=50",
		"/v1/query?kind=captures&limit=50",
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				resp, err := http.Get(ts.URL + urls[(c+i)%len(urls)])
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	_, err = p.RunCampaign(context.Background(), core.CampaignOpts{Store: st, Aggregates: agg})
	done.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	live, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := query.FromStore(st)
	if err != nil {
		t.Fatal(err)
	}
	full, err := recomputed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, full) {
		t.Fatal("aggregates served during the campaign diverge from full-store recompute")
	}
}
