package query

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"strconv"
	"time"

	"ntpscan/internal/analysis"
	"ntpscan/internal/obs"
	"ntpscan/internal/store"
	"ntpscan/internal/zgrab"
)

// DefaultMaxRows bounds /v1/query responses when the request gives no
// limit.
const DefaultMaxRows = 10000

// endpoint labels for the request counter vec, in registration order.
var endpointLabels = []string{"modules", "table2", "vantages", "prefixes", "slices", "query", "metrics"}

const (
	epModules = iota
	epTable2
	epVantages
	epPrefixes
	epSlices
	epQuery
	epMetrics
)

// Metrics are the serving layer's own observability families, kept in
// a registry separate from the campaign's so telemetry determinism is
// untouched by query traffic.
type Metrics struct {
	Requests  *obs.CounterVec
	Errors    *obs.Counter
	LatencyNs *obs.Histogram
	RowsOut   *obs.Counter
}

// latencyBounds buckets request latency from 100µs to ~1.6s in
// powers of four.
var latencyBounds = []int64{
	100_000, 400_000, 1_600_000, 6_400_000, 25_600_000, 102_400_000, 409_600_000, 1_638_400_000,
}

// NewMetrics registers the queryd families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Requests:  reg.NewCounterVec("queryd_requests_total", "Requests served, by endpoint.", "endpoint", endpointLabels),
		Errors:    reg.NewCounter("queryd_errors_total", "Requests rejected or failed."),
		LatencyNs: reg.NewHistogram("queryd_latency_ns", "Request latency in nanoseconds.", latencyBounds),
		RowsOut:   reg.NewCounter("queryd_rows_total", "Rows returned across all responses."),
	}
}

// Server serves the materialized tables and ad-hoc store scans over
// HTTP/JSON. The zero MaxRows means DefaultMaxRows; Clock defaults to
// the wall clock and exists so tests and simulations can pin latency
// accounting to a logical clock.
type Server struct {
	Store   *store.Store
	Agg     *Aggregates
	Reg     *obs.Registry
	Met     *Metrics
	Clock   obs.Clock
	MaxRows int
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// NewServer wires a server over a store and its aggregates. reg may be
// nil, in which case a private registry is created (it still backs
// /metrics).
func NewServer(s *store.Store, agg *Aggregates, reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{Store: s, Agg: agg, Reg: reg, Met: NewMetrics(reg), Clock: wallClock{}}
}

// Stats is the per-response accounting envelope: what the request cost
// (latency), what the scan touched versus pruned, and how much the
// block cache absorbed. Table endpoints—served from materialized
// aggregates—report only latency and row count.
type Stats struct {
	ElapsedNs     int64 `json:"elapsed_ns"`
	Rows          int64 `json:"rows"`
	Truncated     bool  `json:"truncated,omitempty"`
	Segments      int   `json:"segments,omitempty"`
	BlocksRead    int64 `json:"blocks_read,omitempty"`
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	BytesRead     int64 `json:"bytes_read,omitempty"`
	BytesSkipped  int64 `json:"bytes_skipped,omitempty"`
	CacheHits     int64 `json:"cache_hits,omitempty"`
	CacheMisses   int64 `json:"cache_misses,omitempty"`
}

// Response is the envelope every JSON endpoint returns.
type Response struct {
	Data  any    `json:"data"`
	Stats *Stats `json:"stats"`
}

// QueryRow is one /v1/query hit in wire form.
type QueryRow struct {
	Kind    string        `json:"kind"`
	Slice   int           `json:"slice"`
	Addr    string        `json:"addr,omitempty"`
	Vantage string        `json:"vantage,omitempty"`
	Result  *zgrab.Result `json:"result,omitempty"`
}

// Handler returns the HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tables/modules", s.table(epModules, func() any { return s.Agg.Modules() }))
	mux.HandleFunc("GET /v1/tables/table2", s.table(epTable2, func() any { return s.Agg.Table2() }))
	mux.HandleFunc("GET /v1/tables/vantages", s.table(epVantages, func() any { return s.Agg.Vantages() }))
	mux.HandleFunc("GET /v1/tables/slices", s.table(epSlices, func() any { return s.Agg.Slices() }))
	mux.HandleFunc("GET /v1/tables/prefixes", s.prefixes)
	mux.HandleFunc("GET /v1/query", s.query)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// table builds a handler for an aggregate-backed endpoint.
func (s *Server) table(ep int, data func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Agg == nil {
			s.fail(w, http.StatusServiceUnavailable, "no aggregates attached")
			return
		}
		start := s.Clock.Now()
		d := data()
		s.respond(w, ep, d, &Stats{Rows: rowCount(d)}, start)
	}
}

func (s *Server) prefixes(w http.ResponseWriter, r *http.Request) {
	if s.Agg == nil {
		s.fail(w, http.StatusServiceUnavailable, "no aggregates attached")
		return
	}
	start := s.Clock.Now()
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad n: "+v)
			return
		}
		n = p
	}
	d := s.Agg.Prefixes(n)
	s.respond(w, epPrefixes, d, &Stats{Rows: int64(len(d))}, start)
}

// query runs an ad-hoc predicate scan with full pushdown.
func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	if s.Store == nil {
		s.fail(w, http.StatusServiceUnavailable, "no store attached")
		return
	}
	start := s.Clock.Now()
	pred, limit, err := parsePred(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if limit <= 0 {
		limit = s.MaxRows
		if limit <= 0 {
			limit = DefaultMaxRows
		}
	}
	it := s.Store.Scan(pred)
	defer it.Close()
	rows := []QueryRow{}
	truncated := false
	for it.Next() {
		if len(rows) >= limit {
			truncated = true
			break
		}
		row := it.Row()
		qr := QueryRow{Slice: row.Slice}
		switch row.Kind {
		case store.KindCaptures:
			qr.Kind = "capture"
			qr.Addr = row.Capture.Addr.String()
			qr.Vantage = row.Capture.Vantage
		case store.KindResults:
			qr.Kind = "result"
			qr.Addr = row.Result.IP.String()
			qr.Result = row.Result
		}
		rows = append(rows, qr)
	}
	if err := it.Err(); err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	st := it.Stats()
	stats := &Stats{
		Rows:          int64(len(rows)),
		Truncated:     truncated,
		Segments:      st.Segments,
		BlocksRead:    st.BlocksRead,
		BlocksSkipped: st.BlocksSkipped,
		BytesRead:     st.BytesRead,
		BytesSkipped:  st.BytesSkipped,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
	}
	s.respond(w, epQuery, rows, stats, start)
}

// parsePred maps query parameters onto the store predicate:
// kind=captures|results, module=... (repeatable), vantage=...
// (repeatable), prefix=2001:db8::/32, slice_lo/slice_hi, limit.
func parsePred(r *http.Request) (store.Pred, int, error) {
	var pred store.Pred
	q := r.URL.Query()
	switch k := q.Get("kind"); k {
	case "":
	case "captures":
		pred.Kind = store.KindCaptures
	case "results":
		pred.Kind = store.KindResults
	default:
		return pred, 0, fmt.Errorf("bad kind %q (want captures|results)", k)
	}
	pred.Modules = q["module"]
	pred.Vantages = q["vantage"]
	if v := q.Get("prefix"); v != "" {
		pfx, err := netip.ParsePrefix(v)
		if err != nil {
			return pred, 0, fmt.Errorf("bad prefix %q: %v", v, err)
		}
		pred.Prefix = pfx.Masked()
	}
	lo, hi := q.Get("slice_lo"), q.Get("slice_hi")
	if lo != "" || hi != "" {
		sr := store.SliceRange{Lo: 0, Hi: 1 << 30}
		if lo != "" {
			n, err := strconv.Atoi(lo)
			if err != nil {
				return pred, 0, fmt.Errorf("bad slice_lo %q", lo)
			}
			sr.Lo = n
		}
		if hi != "" {
			n, err := strconv.Atoi(hi)
			if err != nil {
				return pred, 0, fmt.Errorf("bad slice_hi %q", hi)
			}
			sr.Hi = n
		}
		pred.Slices = &sr
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return pred, 0, fmt.Errorf("bad limit %q", v)
		}
		limit = n
	}
	return pred, limit, nil
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	s.Met.Requests.Inc(epMetrics)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.Reg.WritePrometheus(w); err != nil {
		s.Met.Errors.Inc()
	}
}

func (s *Server) respond(w http.ResponseWriter, ep int, data any, stats *Stats, start time.Time) {
	stats.ElapsedNs = s.Clock.Now().Sub(start).Nanoseconds()
	s.Met.Requests.Inc(ep)
	s.Met.LatencyNs.Observe(stats.ElapsedNs)
	s.Met.RowsOut.Add(stats.Rows)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(Response{Data: data, Stats: stats}); err != nil {
		s.Met.Errors.Inc()
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.Met.Errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func rowCount(d any) int64 {
	switch v := d.(type) {
	case []ModuleRow:
		return int64(len(v))
	case []VantageRow:
		return int64(len(v))
	case []SliceRow:
		return int64(len(v))
	case []PrefixRow:
		return int64(len(v))
	case []analysis.Table2Row:
		return int64(len(v))
	}
	return 0
}
