package query_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"ntpscan/internal/core"
	"ntpscan/internal/query"
	"ntpscan/internal/store"
)

// The serving benchmarks measure the daemon like a service: fixed
// request batches across concurrent clients per iteration, with
// per-request latencies folded into p50-ns / p99-ns and a throughput
// rps metric (units chosen to sort into cmd/benchjson's expected
// metric order). benchSlices/benchRows match the store package's
// ingest benchmarks so numbers line up across BENCH files.
const (
	benchSlices = 8
	benchRows   = 1500
)

var selectivePred = store.Pred{Kind: store.KindResults, Modules: []string{"http"}}

func countScan(b *testing.B, st *store.Store, pred store.Pred) int {
	b.Helper()
	it := st.Scan(pred)
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		b.Fatal(err)
	}
	it.Close()
	return n
}

// BenchmarkQueryCold is the no-cache baseline: every iteration opens
// the store fresh (empty block and footer caches) and runs one
// selective query, paying footer parses, disk reads and inflates.
func BenchmarkQueryCold(b *testing.B) {
	dir := b.TempDir()
	buildStore(b, dir, benchSlices, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		countScan(b, st, selectivePred)
	}
}

// BenchmarkQueryWarm is the steady state: one long-lived store, caches
// primed by the first query, b.N repeats served from memory.
func BenchmarkQueryWarm(b *testing.B) {
	st := buildStore(b, b.TempDir(), benchSlices, benchRows)
	countScan(b, st, selectivePred) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		countScan(b, st, selectivePred)
	}
}

// BenchmarkScanDictCacheOn/Off isolate the parsed-footer (segment
// dictionary) cache: the block cache is disabled in both and the
// predicate names a module absent from every segment dictionary, so
// each scan prunes every block and its cost is purely opening
// segments and reading/parsing footers — exactly what the cache
// elides. Many scans per iteration keep the timing out of the noise.
func BenchmarkScanDictCacheOn(b *testing.B) {
	benchDictCache(b, 0)
}

func BenchmarkScanDictCacheOff(b *testing.B) {
	benchDictCache(b, -1)
}

func benchDictCache(b *testing.B, footerEntries int) {
	dir := b.TempDir()
	buildStore(b, dir, benchSlices, benchRows)
	st, err := store.Open(dir, store.Options{BlockCacheBytes: -1, FooterCacheEntries: footerEntries})
	if err != nil {
		b.Fatal(err)
	}
	// "telnet" is not in the bench corpus: the dictionary bitmask
	// prunes every block, leaving only footer work.
	pruned := store.Pred{Kind: store.KindResults, Modules: []string{"telnet"}}
	if n := countScan(b, st, pruned); n != 0 { // prime (a no-op when disabled)
		b.Fatalf("pruned scan returned %d rows", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 50; j++ {
			countScan(b, st, pruned)
		}
	}
}

// serviceWorkload is the mixed request stream the concurrent
// benchmarks replay: materialized tables and pushdown scans.
var serviceWorkload = []string{
	"/v1/tables/modules",
	"/v1/tables/table2",
	"/v1/tables/prefixes?n=10",
	"/v1/tables/slices",
	"/v1/query?kind=results&module=http&limit=200",
	"/v1/query?kind=results&module=ssh&limit=200",
	"/v1/query?kind=captures&vantage=DE&limit=200",
	"/v1/tables/vantages",
}

// hammer fires total requests at base across nClients concurrent
// clients, returning every request's latency.
func hammer(b *testing.B, base string, nClients, total int) []int64 {
	b.Helper()
	lats := make([][]int64, nClients)
	var wg sync.WaitGroup
	per := total / nClients
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			own := make([]int64, 0, per)
			for i := 0; i < per; i++ {
				url := base + serviceWorkload[(c*per+i)%len(serviceWorkload)]
				t0 := time.Now()
				resp, err := http.Get(url)
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				own = append(own, time.Since(t0).Nanoseconds())
				if resp.StatusCode != http.StatusOK {
					b.Errorf("GET %s: %d", url, resp.StatusCode)
					return
				}
			}
			lats[c] = own
		}(c)
	}
	wg.Wait()
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	return all
}

// reportLatencies folds per-request latencies into the benchmark's
// custom metrics: p50-ns, p99-ns and rps over the timed window.
func reportLatencies(b *testing.B, all []int64, elapsed time.Duration) {
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(float64(all[len(all)/2]), "p50-ns")
	b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns")
	if elapsed > 0 {
		b.ReportMetric(float64(len(all))/elapsed.Seconds(), "rps")
	}
}

// BenchmarkQueryConcurrent measures the daemon under concurrent load:
// each iteration is a fixed batch of 400 mixed requests across 8
// clients against a warm server, so even -benchtime 1x yields stable
// tail percentiles.
func BenchmarkQueryConcurrent(b *testing.B) {
	const (
		nClients = 8
		perIter  = 400
	)
	st := buildStore(b, b.TempDir(), benchSlices, benchRows)
	agg, err := query.FromStore(st)
	if err != nil {
		b.Fatal(err)
	}
	srv := query.NewServer(st, agg, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hammer(b, ts.URL, nClients, perIter) // warm caches and connections
	var all []int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all = append(all, hammer(b, ts.URL, nClients, perIter)...)
	}
	b.StopTimer()
	reportLatencies(b, all, b.Elapsed())
}

// BenchmarkQueryDuringCampaign serves the same mixed workload while a
// full campaign writes into the store and aggregates — queryd's
// live-serving configuration. One iteration = one campaign with 4
// clients querying throughout.
func BenchmarkQueryDuringCampaign(b *testing.B) {
	const nClients = 4
	var all []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := core.NewPipeline(campaignConfig(50, 8))
		st, err := store.Open(b.TempDir(), store.Options{Obs: p.Obs})
		if err != nil {
			b.Fatal(err)
		}
		agg := query.NewAggregates()
		srv := query.NewServer(st, agg, nil)
		ts := httptest.NewServer(srv.Handler())
		b.StartTimer()

		stop := make(chan struct{})
		lats := make([][]int64, nClients)
		var wg sync.WaitGroup
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var own []int64
				for j := 0; ; j++ {
					select {
					case <-stop:
						lats[c] = own
						return
					default:
					}
					url := ts.URL + serviceWorkload[(c+j)%len(serviceWorkload)]
					t0 := time.Now()
					resp, err := http.Get(url)
					if err != nil {
						b.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					own = append(own, time.Since(t0).Nanoseconds())
				}
			}(c)
		}
		if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Store: st, Aggregates: agg}); err != nil {
			b.Fatal(err)
		}
		close(stop)
		wg.Wait()
		b.StopTimer()
		for _, l := range lats {
			all = append(all, l...)
		}
		ts.Close()
		b.StartTimer()
	}
	b.StopTimer()
	reportLatencies(b, all, b.Elapsed())
}
