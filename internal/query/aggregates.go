// Package query is the hot read path over the columnar store: the
// serving layer behind cmd/queryd. It has two halves —
//
//   - Aggregates, incrementally maintained materialized tables (the
//     paper's per-module, per-vantage, per-/48, per-slice and Table 2
//     summaries). A running campaign feeds them at each slice's drain
//     barrier through core's SliceAggregator hook; an offline store is
//     recomputed with FromStore. Both routes land on identical state:
//     the aggregates are pure sets and counts, so accumulation order
//     cannot leak into them, and the snapshot encoding is
//     deterministic (sorted keys, sorted set members).
//   - Server, an HTTP/JSON front end exposing the tables plus ad-hoc
//     predicate scans that push down to the store's block index.
//
// The package deliberately does not import internal/core: it
// implements core.SliceAggregator structurally, so core drives it
// through the interface without a dependency cycle.
package query

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"sync"

	"ntpscan/internal/analysis"
	"ntpscan/internal/store"
	"ntpscan/internal/zgrab"
)

// Aggregates is the set of materialized query tables. All methods are
// safe for concurrent use: the campaign goroutine writes at drain
// barriers while HTTP handlers read.
type Aggregates struct {
	mu       sync.RWMutex
	modules  map[string]*moduleAgg
	vantages map[string]*vantageAgg
	nets     map[netip.Prefix]*netAgg
	slices   map[int]*sliceAgg
	table2   *analysis.Table2Builder
}

type moduleAgg struct {
	results   int64
	successes int64
	addrs     map[netip.Addr]struct{} // distinct addrs with a successful grab
}

type vantageAgg struct {
	captures int64
	addrs    map[netip.Addr]struct{}
}

type netAgg struct {
	captures int64
	results  int64
	addrs    map[netip.Addr]struct{} // distinct captured addrs in the /48
}

type sliceAgg struct {
	captures int64
	results  int64
}

// NewAggregates returns empty tables.
func NewAggregates() *Aggregates {
	return &Aggregates{
		modules:  map[string]*moduleAgg{},
		vantages: map[string]*vantageAgg{},
		nets:     map[netip.Prefix]*netAgg{},
		slices:   map[int]*sliceAgg{},
		table2:   analysis.NewTable2Builder(),
	}
}

// AggregateSlice implements core.SliceAggregator: it folds one slice's
// quiescent drained data into every table. The caps and results slices
// are borrowed for the duration of the call; everything kept is
// copied.
func (a *Aggregates) AggregateSlice(slice int, caps []store.CaptureRow, results []*zgrab.Result) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range caps {
		a.addCapture(slice, caps[i])
	}
	for _, r := range results {
		a.addResult(slice, r)
	}
	return nil
}

// addCapture and addResult are the single-row accumulators (callers
// hold mu). They are deliberately commutative — the same multiset of
// rows yields the same state in any order, which is what lets a full
// store scan (segment order) reproduce campaign-time state (slice
// order) exactly.
func (a *Aggregates) addCapture(slice int, c store.CaptureRow) {
	v := a.vantages[c.Vantage]
	if v == nil {
		v = &vantageAgg{addrs: map[netip.Addr]struct{}{}}
		a.vantages[c.Vantage] = v
	}
	v.captures++
	v.addrs[c.Addr] = struct{}{}

	n := a.netFor(c.Addr)
	n.captures++
	n.addrs[c.Addr] = struct{}{}

	a.sliceFor(slice).captures++
}

func (a *Aggregates) addResult(slice int, r *zgrab.Result) {
	m := a.modules[r.Module]
	if m == nil {
		m = &moduleAgg{addrs: map[netip.Addr]struct{}{}}
		a.modules[r.Module] = m
	}
	m.results++
	if r.Success() {
		m.successes++
		m.addrs[r.IP] = struct{}{}
	}

	a.netFor(r.IP).results++
	a.sliceFor(slice).results++
	a.table2.Add(r)
}

func (a *Aggregates) netFor(addr netip.Addr) *netAgg {
	pfx, _ := addr.Prefix(48)
	n := a.nets[pfx]
	if n == nil {
		n = &netAgg{addrs: map[netip.Addr]struct{}{}}
		a.nets[pfx] = n
	}
	return n
}

func (a *Aggregates) sliceFor(slice int) *sliceAgg {
	s := a.slices[slice]
	if s == nil {
		s = &sliceAgg{}
		a.slices[slice] = s
	}
	return s
}

// FromStore recomputes the tables from a full store scan. The result
// is exactly the state an aggregator fed slice-by-slice during the
// campaign would hold — the consistency oracle the tests pin.
func FromStore(s *store.Store) (*Aggregates, error) {
	a := NewAggregates()
	it := s.Scan(store.Pred{})
	defer it.Close()
	for it.Next() {
		row := it.Row()
		switch row.Kind {
		case store.KindCaptures:
			a.addCapture(row.Slice, row.Capture)
		case store.KindResults:
			a.addResult(row.Slice, row.Result)
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// ---- table views ----

// ModuleRow is one row of the per-module table.
type ModuleRow struct {
	Module    string `json:"module"`
	Results   int64  `json:"results"`
	Successes int64  `json:"successes"`
	Addrs     int    `json:"addrs"`
}

// Modules returns per-module totals sorted by module name.
func (a *Aggregates) Modules() []ModuleRow {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]ModuleRow, 0, len(a.modules))
	for name, m := range a.modules {
		out = append(out, ModuleRow{Module: name, Results: m.results, Successes: m.successes, Addrs: len(m.addrs)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Module < out[j].Module })
	return out
}

// VantageRow is one row of the per-vantage capture table.
type VantageRow struct {
	Vantage  string `json:"vantage"`
	Captures int64  `json:"captures"`
	Addrs    int    `json:"addrs"`
}

// Vantages returns per-vantage totals sorted by vantage.
func (a *Aggregates) Vantages() []VantageRow {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]VantageRow, 0, len(a.vantages))
	for name, v := range a.vantages {
		out = append(out, VantageRow{Vantage: name, Captures: v.captures, Addrs: len(v.addrs)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vantage < out[j].Vantage })
	return out
}

// PrefixRow is one row of the per-/48 table.
type PrefixRow struct {
	Prefix   string `json:"prefix"`
	Captures int64  `json:"captures"`
	Results  int64  `json:"results"`
	Addrs    int    `json:"addrs"`
}

// Prefixes returns the top-n /48 networks by distinct captured
// addresses (ties broken by prefix order); n <= 0 returns all.
func (a *Aggregates) Prefixes(n int) []PrefixRow {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]PrefixRow, 0, len(a.nets))
	for pfx, agg := range a.nets {
		out = append(out, PrefixRow{Prefix: pfx.String(), Captures: agg.captures, Results: agg.results, Addrs: len(agg.addrs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addrs != out[j].Addrs {
			return out[i].Addrs > out[j].Addrs
		}
		return out[i].Prefix < out[j].Prefix
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// SliceRow is one row of the collection-timeline table.
type SliceRow struct {
	Slice    int   `json:"slice"`
	Captures int64 `json:"captures"`
	Results  int64 `json:"results"`
}

// Slices returns the per-slice timeline in slice order.
func (a *Aggregates) Slices() []SliceRow {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]SliceRow, 0, len(a.slices))
	for id, s := range a.slices {
		out = append(out, SliceRow{Slice: id, Captures: s.captures, Results: s.results})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slice < out[j].Slice })
	return out
}

// Table2 returns the paper's Table 2 rows from the incremental
// builder.
func (a *Aggregates) Table2() []analysis.Table2Row {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.table2.Rows()
}

// ---- snapshot / restore ----

// aggState is the deterministic wire form: string-keyed maps (which
// encoding/json emits in sorted key order) of sorted-list sets.
type aggState struct {
	Modules  map[string]moduleState  `json:"modules"`
	Vantages map[string]vantageState `json:"vantages"`
	Nets     map[string]netState     `json:"nets48"`
	Slices   map[string]sliceState   `json:"slices"`
	Table2   json.RawMessage         `json:"table2"`
}

type moduleState struct {
	Results   int64    `json:"results"`
	Successes int64    `json:"successes"`
	Addrs     []string `json:"addrs"`
}

type vantageState struct {
	Captures int64    `json:"captures"`
	Addrs    []string `json:"addrs"`
}

type netState struct {
	Captures int64    `json:"captures"`
	Results  int64    `json:"results"`
	Addrs    []string `json:"addrs"`
}

type sliceState struct {
	Captures int64 `json:"captures"`
	Results  int64 `json:"results"`
}

// Snapshot implements core.SliceAggregator: a byte-deterministic JSON
// snapshot. Two aggregate states with equal contents — however
// accumulated — serialize to identical bytes.
func (a *Aggregates) Snapshot() (json.RawMessage, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := aggState{
		Modules:  make(map[string]moduleState, len(a.modules)),
		Vantages: make(map[string]vantageState, len(a.vantages)),
		Nets:     make(map[string]netState, len(a.nets)),
		Slices:   make(map[string]sliceState, len(a.slices)),
	}
	for name, m := range a.modules {
		st.Modules[name] = moduleState{Results: m.results, Successes: m.successes, Addrs: sortedAddrs(m.addrs)}
	}
	for name, v := range a.vantages {
		st.Vantages[name] = vantageState{Captures: v.captures, Addrs: sortedAddrs(v.addrs)}
	}
	for pfx, n := range a.nets {
		st.Nets[pfx.String()] = netState{Captures: n.captures, Results: n.results, Addrs: sortedAddrs(n.addrs)}
	}
	for id, s := range a.slices {
		st.Slices[strconv.Itoa(id)] = sliceState{Captures: s.captures, Results: s.results}
	}
	t2, err := a.table2.State()
	if err != nil {
		return nil, err
	}
	st.Table2 = t2
	return json.Marshal(st)
}

// Restore implements core.SliceAggregator: it replaces the tables with
// a Snapshot's contents.
func (a *Aggregates) Restore(raw json.RawMessage) error {
	var st aggState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("query: aggregate snapshot: %w", err)
	}
	fresh := NewAggregates()
	for name, m := range st.Modules {
		addrs, err := addrSet(m.Addrs)
		if err != nil {
			return err
		}
		fresh.modules[name] = &moduleAgg{results: m.Results, successes: m.Successes, addrs: addrs}
	}
	for name, v := range st.Vantages {
		addrs, err := addrSet(v.Addrs)
		if err != nil {
			return err
		}
		fresh.vantages[name] = &vantageAgg{captures: v.Captures, addrs: addrs}
	}
	for ps, n := range st.Nets {
		pfx, err := netip.ParsePrefix(ps)
		if err != nil {
			return fmt.Errorf("query: aggregate snapshot: %w", err)
		}
		addrs, err := addrSet(n.Addrs)
		if err != nil {
			return err
		}
		fresh.nets[pfx] = &netAgg{captures: n.Captures, results: n.Results, addrs: addrs}
	}
	for ids, s := range st.Slices {
		id, err := strconv.Atoi(ids)
		if err != nil {
			return fmt.Errorf("query: aggregate snapshot: %w", err)
		}
		fresh.slices[id] = &sliceAgg{captures: s.Captures, results: s.Results}
	}
	if st.Table2 != nil {
		if err := fresh.table2.Restore(st.Table2); err != nil {
			return err
		}
	}
	a.mu.Lock()
	a.modules = fresh.modules
	a.vantages = fresh.vantages
	a.nets = fresh.nets
	a.slices = fresh.slices
	a.table2 = fresh.table2
	a.mu.Unlock()
	return nil
}

func sortedAddrs(m map[netip.Addr]struct{}) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

func addrSet(in []string) (map[netip.Addr]struct{}, error) {
	out := make(map[netip.Addr]struct{}, len(in))
	for _, s := range in {
		a, err := netip.ParseAddr(s)
		if err != nil {
			return nil, fmt.Errorf("query: aggregate snapshot: %w", err)
		}
		out[a] = struct{}{}
	}
	return out, nil
}
