package netsim

import (
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"
)

// This file implements the in-memory stream connection underlying
// simulated TCP. Unlike net.Pipe it is buffered: writes never block on
// the peer, which prevents the lockstep deadlocks synchronous pipes cause
// for protocols where both ends may write before reading (TLS-style
// handshakes). Reads block until data, EOF, close, or deadline.

// pipeDeadline signals expiry of a deadline through a channel, in the
// style of net's internal connection deadlines. The zero value is an
// unarmed deadline: the cancel channel is allocated lazily on the first
// set, so connections that never arm a deadline (every stream handed
// out under a manual clock) pay no allocation for it.
type pipeDeadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{} // closed when the deadline has passed; nil until first set
}

// neverExpires is the wait channel of an unarmed deadline: shared,
// never closed, never sent on.
var neverExpires = make(chan struct{})

// set configures the deadline; the zero time disables it.
func (d *pipeDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // wait for the fired timer's close to land
	}
	d.timer = nil

	closed := d.cancel != nil && isClosedChan(d.cancel)
	if t.IsZero() {
		if closed {
			d.cancel = nil
		}
		return
	}
	if dur := time.Until(t); dur > 0 {
		if closed || d.cancel == nil {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}
	// Deadline already passed.
	if closed {
		return
	}
	if d.cancel == nil {
		d.cancel = make(chan struct{})
	}
	close(d.cancel)
}

// wait returns a channel that is closed once the deadline passes.
func (d *pipeDeadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cancel == nil {
		return neverExpires
	}
	return d.cancel
}

// armed reports whether a deadline is currently configured (pending or
// already passed).
func (d *pipeDeadline) armed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.timer != nil || (d.cancel != nil && isClosedChan(d.cancel))
}

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// streamBuf is one direction of a stream connection: an unbounded byte
// queue with close semantics.
type streamBuf struct {
	mu       sync.Mutex
	data     []byte
	eof      bool          // write side closed: drain then io.EOF
	notify   chan struct{} // 1-buffered wakeup for blocked readers
	maxBytes int           // accounting only (peak size), no backpressure
}

func (b *streamBuf) wake() {
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// write appends p. Returns io.ErrClosedPipe after closeWrite.
func (b *streamBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.eof {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	if len(b.data) > b.maxBytes {
		b.maxBytes = len(b.data)
	}
	b.wake()
	return len(p), nil
}

// closeWrite marks EOF; pending data remains readable.
func (b *streamBuf) closeWrite() {
	b.mu.Lock()
	b.eof = true
	b.mu.Unlock()
	b.wake()
}

// tryRead moves available bytes into p. ok=false means the caller must
// block and retry.
func (b *streamBuf) tryRead(p []byte) (n int, ok bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.data) > 0 {
		n = copy(p, b.data)
		rest := copy(b.data, b.data[n:])
		b.data = b.data[:rest]
		return n, true, nil
	}
	if b.eof {
		return 0, true, io.EOF
	}
	return 0, false, nil
}

// Conn is a simulated TCP connection. It implements net.Conn.
type Conn struct {
	rd, wr        *streamBuf
	local, remote netip.AddrPort

	once    sync.Once
	done    chan struct{} // closed on Close
	readDL  pipeDeadline
	writeDL pipeDeadline

	// ignoreDeadlines makes Set*Deadline no-ops. The network arms it on
	// connections it hands out under a manual clock: the peer is an
	// in-process goroutine whose replies take zero logical time, so a
	// wall-clock deadline could only fire on scheduler starvation —
	// turning worker-count and machine-load into observable scan
	// outcomes and breaking run-to-run determinism.
	ignoreDeadlines bool
}

// connPair backs both ends of a simulated connection with one
// allocation. The profiling harness showed the old layout (two Conns,
// two streamBufs, four deadline channels, two close closures) as one of
// the campaign's top allocation sites — every accepted stream paid ~12
// object allocations before a byte moved.
type connPair struct {
	ends   [2]Conn
	ab, ba streamBuf
}

// NewConnPair returns the two ends of a simulated connection between the
// given endpoints. Data written to one end is readable from the other.
func NewConnPair(a, b netip.AddrPort) (*Conn, *Conn) {
	p := &connPair{}
	p.ab.notify = make(chan struct{}, 1)
	p.ba.notify = make(chan struct{}, 1)
	ca, cb := &p.ends[0], &p.ends[1]
	*ca = Conn{
		rd: &p.ba, wr: &p.ab, local: a, remote: b,
		done: make(chan struct{}),
	}
	*cb = Conn{
		rd: &p.ab, wr: &p.ba, local: b, remote: a,
		done: make(chan struct{}),
	}
	return ca, cb
}

// Read implements net.Conn. It blocks until data is available, the peer
// closes (io.EOF after draining), this end closes (net.ErrClosed), or the
// read deadline expires (os.ErrDeadlineExceeded).
func (c *Conn) Read(p []byte) (int, error) {
	for {
		if isClosedChan(c.done) {
			return 0, net.ErrClosed
		}
		if isClosedChan(c.readDL.wait()) {
			return 0, os.ErrDeadlineExceeded
		}
		n, ok, err := c.rd.tryRead(p)
		if ok {
			return n, err
		}
		select {
		case <-c.rd.notify:
			// retry
		case <-c.done:
			return 0, net.ErrClosed
		case <-c.readDL.wait():
			return 0, os.ErrDeadlineExceeded
		}
	}
}

// Write implements net.Conn. The buffer is unbounded, so writes only fail
// on closed connections or an already-expired write deadline.
func (c *Conn) Write(p []byte) (int, error) {
	if isClosedChan(c.done) {
		return 0, net.ErrClosed
	}
	if isClosedChan(c.writeDL.wait()) {
		return 0, os.ErrDeadlineExceeded
	}
	return c.wr.write(p)
}

// Close implements net.Conn. It half-closes the write direction (the
// peer drains then sees io.EOF) and unblocks this end's readers.
// closeWrite wakes readers blocked on the shared buffer, which is
// exactly the peer's read side, so no separate peer notification is
// needed.
func (c *Conn) Close() error {
	c.once.Do(func() {
		c.wr.closeWrite()
		close(c.done)
	})
	return nil
}

// CloseWrite half-closes the sending direction without closing reads,
// mirroring TCP FIN semantics used by scanners that shut down their send
// side and drain the response.
func (c *Conn) CloseWrite() error {
	c.wr.closeWrite()
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return tcpAddr(c.local) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return tcpAddr(c.remote) }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	if isClosedChan(c.done) {
		return net.ErrClosed
	}
	if c.ignoreDeadlines {
		return nil
	}
	c.readDL.set(t)
	c.writeDL.set(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if isClosedChan(c.done) {
		return net.ErrClosed
	}
	if c.ignoreDeadlines {
		return nil
	}
	c.readDL.set(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if isClosedChan(c.done) {
		return net.ErrClosed
	}
	if c.ignoreDeadlines {
		return nil
	}
	c.writeDL.set(t)
	return nil
}

func tcpAddr(ap netip.AddrPort) net.Addr {
	return &net.TCPAddr{IP: ap.Addr().AsSlice(), Port: int(ap.Port()), Zone: ap.Addr().Zone()}
}
