package netsim

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"os"
	"testing"
	"time"
)

var faultStart = time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)

// faultNet builds a fabric on a manual clock with one TCP banner host
// and one UDP echo host.
func faultNet(t *testing.T) (*Network, *ManualClock) {
	t.Helper()
	clock := NewManualClock(faultStart)
	n := New(Config{Clock: clock, DialTimeout: 10 * time.Millisecond})
	n.Register(addr("2001:db8::80"), NewHost("web").HandleTCP(80, func(c net.Conn) {
		defer c.Close()
		c.Write([]byte("SSH-2.0-OpenSSH_9.6 here is a long banner with plenty of bytes to truncate\r\n"))
	}))
	n.Register(addr("2001:db8::123"), NewHost("ntp").HandleUDP(123, func(from netip.AddrPort, p []byte) [][]byte {
		return [][]byte{append([]byte("pong:"), p...)}
	}))
	return n, clock
}

func dialBanner(t *testing.T, n *Network) ([]byte, error) {
	t.Helper()
	conn, err := n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8::80]:80"))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return io.ReadAll(conn)
}

func TestOutageBlackholesTCPDuringWindow(t *testing.T) {
	n, clock := faultNet(t)
	plan := &FaultPlan{Seed: 1}
	plan.Add(Fault{
		Kind: FaultOutage, Addr: addr("2001:db8::80"),
		From: faultStart.Add(time.Hour), Until: faultStart.Add(2 * time.Hour),
	})
	n.InstallFaults(plan)

	if _, err := dialBanner(t, n); err != nil {
		t.Fatalf("dial before window: %v", err)
	}
	clock.Advance(90 * time.Minute)
	if _, err := dialBanner(t, n); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dial during outage = %v, want ErrTimeout", err)
	}
	if n.HostUp(addr("2001:db8::80"), clock.Now()) {
		t.Fatal("HostUp true mid-outage")
	}
	clock.Advance(time.Hour)
	if _, err := dialBanner(t, n); err != nil {
		t.Fatalf("dial after window: %v", err)
	}
	if !n.HostUp(addr("2001:db8::80"), clock.Now()) {
		t.Fatal("HostUp false after recovery")
	}
}

func TestOutageDropsUDPBothWays(t *testing.T) {
	n, clock := faultNet(t)
	plan := &FaultPlan{Seed: 2}
	plan.Add(Fault{
		Kind: FaultOutage, Addr: addr("2001:db8::123"),
		From: faultStart, Until: faultStart.Add(time.Hour),
	})
	n.InstallFaults(plan)

	c, err := n.ListenUDP(ap("[2001:db8::1]:4000"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WriteTo([]byte("x"), ap("[2001:db8::123]:123"))
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, _, err := c.ReadFrom(make([]byte, 16)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want deadline (datagram swallowed)", err)
	}

	clock.Advance(2 * time.Hour)
	c.WriteTo([]byte("x"), ap("[2001:db8::123]:123"))
	c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	nr, _, err := c.ReadFrom(buf)
	if err != nil || string(buf[:nr]) != "pong:x" {
		t.Fatalf("after outage: %q, %v", buf[:nr], err)
	}
}

func TestLossBurstScopedToPrefix(t *testing.T) {
	n, _ := faultNet(t)
	plan := &FaultPlan{Seed: 3}
	plan.Add(Fault{
		Kind: FaultLoss, Prefix: netip.MustParsePrefix("2001:db8::/48"),
		From: faultStart, Until: faultStart.Add(time.Hour), Prob: 1,
	})
	n.Register(addr("2001:db9::80"), NewHost("other").HandleTCP(80, func(c net.Conn) { c.Close() }))
	n.InstallFaults(plan)

	// Inside the prefix every SYN dies.
	if _, err := dialBanner(t, n); !errors.Is(err, ErrTimeout) {
		t.Fatalf("in-prefix dial = %v, want ErrTimeout", err)
	}
	// Outside the prefix the burst does not apply.
	if _, err := n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db9::80]:80")); err != nil {
		t.Fatalf("out-of-prefix dial: %v", err)
	}
}

func TestLossDecisionsArePureAndAttemptSalted(t *testing.T) {
	src := addr("2001:db8::1")
	dst := ap("[2001:db8::80]:80")
	at := faultStart.Add(3 * time.Hour)

	// Pure: the same flow identity always rolls the same way.
	for i := 0; i < 10; i++ {
		if dropTCP(7, src, dst, at, 0, 0.5) != dropTCP(7, src, dst, at, 0, 0.5) {
			t.Fatal("dropTCP not deterministic")
		}
	}
	// Attempt-salted: across many flows, retries must re-roll (some
	// attempt-1 decisions differ from attempt-0).
	differs := 0
	for p := uint64(0); p < 64; p++ {
		d := netip.AddrPortFrom(dst.Addr(), uint16(1000+p))
		if dropTCP(7, src, d, at, 0, 0.5) != dropTCP(7, src, d, at, 1, 0.5) {
			differs++
		}
	}
	if differs == 0 {
		t.Fatal("retry attempts never re-roll the loss decision")
	}
	// Seed-dependent: a different plan seed is a different loss process.
	differs = 0
	for p := uint64(0); p < 64; p++ {
		d := netip.AddrPortFrom(dst.Addr(), uint16(1000+p))
		if dropTCP(7, src, d, at, 0, 0.5) != dropTCP(8, src, d, at, 0, 0.5) {
			differs++
		}
	}
	if differs == 0 {
		t.Fatal("plan seed does not influence loss decisions")
	}
}

func TestSlowLinkTimesOutWhenBeyondPatience(t *testing.T) {
	n, clock := faultNet(t)
	plan := &FaultPlan{Seed: 4}
	plan.Add(Fault{
		Kind: FaultSlow, Addr: addr("2001:db8::80"),
		From: faultStart, Until: faultStart.Add(time.Hour), Latency: time.Second,
	})
	n.InstallFaults(plan)
	if _, err := dialBanner(t, n); !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow dial = %v, want ErrTimeout (latency %v > DialTimeout %v)",
			err, time.Second, n.cfg.DialTimeout)
	}
	clock.Advance(2 * time.Hour)
	if _, err := dialBanner(t, n); err != nil {
		t.Fatalf("after slow window: %v", err)
	}
}

func TestGarbleTruncatesTCPBanner(t *testing.T) {
	n, clock := faultNet(t)
	clean, err := dialBanner(t, n)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Seed: 5}
	plan.Add(Fault{
		Kind: FaultGarble, Addr: addr("2001:db8::80"),
		From: faultStart, Until: faultStart.Add(time.Hour),
	})
	n.InstallFaults(plan)

	got, err := dialBanner(t, n)
	if err != nil {
		t.Fatalf("garbled read: %v", err)
	}
	if len(got) >= len(clean) {
		t.Fatalf("garbled banner not truncated: %d bytes vs %d clean", len(got), len(clean))
	}
	if len(got) < 5 || len(got) > 60 {
		t.Fatalf("cut %d outside 5..60", len(got))
	}
	if got[len(got)-1] == clean[len(got)-1] {
		t.Fatal("final garbled byte not corrupted")
	}
	if string(got[:len(got)-1]) != string(clean[:len(got)-1]) {
		t.Fatal("garble corrupted more than the final byte")
	}
	// Deterministic: the same dial garbles identically.
	again, err := dialBanner(t, n)
	if err != nil || string(again) != string(got) {
		t.Fatalf("garble not deterministic: %q vs %q (%v)", again, got, err)
	}
	clock.Advance(2 * time.Hour)
	if after, _ := dialBanner(t, n); string(after) != string(clean) {
		t.Fatal("banner still garbled after window")
	}
}

func TestGarbleCorruptsUDPResponse(t *testing.T) {
	n, _ := faultNet(t)
	plan := &FaultPlan{Seed: 6}
	plan.Add(Fault{
		Kind: FaultGarble, Addr: addr("2001:db8::123"),
		From: faultStart, Until: faultStart.Add(time.Hour),
	})
	n.InstallFaults(plan)

	c, _ := n.ListenUDP(ap("[2001:db8::1]:4000"))
	defer c.Close()
	c.WriteTo([]byte("hello"), ap("[2001:db8::123]:123"))
	c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	nr, _, err := c.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := "pong:hello"
	if nr >= len(want) {
		t.Fatalf("garbled response not clipped: %q", buf[:nr])
	}
}

func TestInstallFaultsNilRemoves(t *testing.T) {
	n, _ := faultNet(t)
	plan := &FaultPlan{Seed: 7}
	plan.Add(Fault{
		Kind: FaultOutage, Addr: addr("2001:db8::80"),
		From: faultStart, Until: faultStart.Add(time.Hour),
	})
	n.InstallFaults(plan)
	if _, err := dialBanner(t, n); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	n.InstallFaults(nil)
	if _, err := dialBanner(t, n); err != nil {
		t.Fatalf("after removing plan: %v", err)
	}
}

func TestWithAttemptRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := AttemptFrom(ctx); got != 0 {
		t.Fatalf("untagged ctx attempt = %d", got)
	}
	if got := AttemptFrom(WithAttempt(ctx, 0)); got != 0 {
		t.Fatalf("attempt 0 = %d", got)
	}
	if got := AttemptFrom(WithAttempt(ctx, 3)); got != 3 {
		t.Fatalf("attempt 3 round-trips as %d", got)
	}
}

// Satellite: fabric errors are real net.Errors so consumers can
// classify timeouts structurally instead of string-matching.
func TestFabricErrorsAreNetErrors(t *testing.T) {
	n := New(Config{Clock: NewManualClock(faultStart)})
	n.Register(addr("2001:db8::5"), NewHost("closed"))

	_, err := n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8::5]:22"))
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("refused error %T does not implement net.Error", err)
	}
	if ne.Timeout() {
		t.Fatal("connection refused claims Timeout()")
	}
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("refused error lost sentinel identity: %v", err)
	}

	_, err = n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8:dead::1]:80"))
	if !errors.As(err, &ne) {
		t.Fatalf("timeout error %T does not implement net.Error", err)
	}
	if !ne.Timeout() || !ne.Temporary() {
		t.Fatalf("blackhole timeout: Timeout()=%v Temporary()=%v, want true/true",
			ne.Timeout(), ne.Temporary())
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout error lost sentinel identity: %v", err)
	}
}
