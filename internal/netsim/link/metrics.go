package link

import (
	"time"

	"ntpscan/internal/obs"
)

// Metrics is the link-layer observability surface. Families and their
// conservation laws:
//
//	link_enqueued_total == link_delivered_total
//	                     + link_dropped_tail_total
//	                     + link_dropped_churn_total
//	link_sojourn_us histogram count == link_delivered_total
//	link_queue_depth histogram count == link_delivered_total
//	                                  + link_dropped_tail_total
//	link_late_total <= link_delivered_total
//
// (Late packets are delivered by the link but timed out by the flow,
// so they count as delivered here and as timeouts at the scan layer.)
type Metrics struct {
	Enqueued     *obs.Counter
	Delivered    *obs.Counter
	DroppedTail  *obs.Counter
	DroppedChurn *obs.Counter
	Late         *obs.Counter
	ChurnEvents  *obs.Counter
	Depth        *obs.Histogram
	Sojourn      *obs.Histogram
	Withdrawn    *obs.Gauge
}

// NewMetrics registers (or re-fetches — registration is get-or-create)
// the link_* families on a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Enqueued:     r.NewCounter("link_enqueued_total", "packets that entered an emulated link"),
		Delivered:    r.NewCounter("link_delivered_total", "packets that came out of an emulated link (late ones included)"),
		DroppedTail:  r.NewCounter("link_dropped_tail_total", "packets tail-dropped by a full link queue"),
		DroppedChurn: r.NewCounter("link_dropped_churn_total", "packets dropped because route churn had withdrawn the prefix"),
		Late:         r.NewCounter("link_late_total", "delivered packets whose sojourn exceeded the flow's patience"),
		ChurnEvents:  r.NewCounter("link_churn_events_total", "route announce/withdraw events applied at slice boundaries"),
		Depth:        r.NewHistogram("link_queue_depth", "cross-traffic backlog (packets) found on arrival", []int64{0, 1, 2, 4, 8, 16, 32, 64}),
		Sojourn:      r.NewHistogram("link_sojourn_us", "stamped link sojourn of delivered packets (microseconds)", []int64{1, 10, 50, 100, 500, 1000, 10000}),
		Withdrawn:    r.NewGauge("link_withdrawn_prefixes", "prefixes currently withdrawn by route churn"),
	}
}

// Account books one traversal outcome. Nil-receiver and miss safe, so
// call sites don't branch.
func (m *Metrics) Account(o Outcome) {
	if m == nil || !o.Hit {
		return
	}
	m.Enqueued.Inc()
	switch {
	case o.Withdrawn:
		m.DroppedChurn.Inc()
	case o.DropTail:
		m.DroppedTail.Inc()
		m.Depth.Observe(int64(o.Depth))
	default:
		m.Delivered.Inc()
		m.Depth.Observe(int64(o.Depth))
		m.Sojourn.Observe(int64(o.Sojourn / time.Microsecond))
		if o.Late {
			m.Late.Inc()
		}
	}
}
