package link

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"time"

	"ntpscan/internal/obs"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testPlan(t *testing.T) *Plan {
	p := &Plan{
		Seed: 99,
		Vantages: map[netip.Addr]Params{
			mustAddr(t, "2a10::123"): {QueuePackets: 8, BytesPerSec: 1 << 20, PropDelay: 10 * time.Microsecond, Utilization: 0.5},
		},
		Prefixes: map[netip.Prefix]Params{
			mustPrefix(t, "2001:db8:1::/48"): {QueuePackets: 4, Utilization: 0.9, JitterMax: 5 * time.Microsecond},
		},
		Churn: []ChurnEvent{
			{Prefix: mustPrefix(t, "2001:db8:1::/48"), Slice: 10, Withdraw: true},
			{Prefix: mustPrefix(t, "2001:db8:1::/48"), Slice: 20},
		},
		Epoch:    time.Unix(1000, 0).UTC(),
		SliceLen: time.Second,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Build()
	return p
}

func TestTraverseDeterministic(t *testing.T) {
	p := testPlan(t)
	dst := mustAddr(t, "2a10::123")
	at := time.Unix(1005, 0).UTC()
	a := p.Traverse(dst, 0xfeed, 96, p.SliceOf(at), 100*time.Microsecond)
	for i := 0; i < 100; i++ {
		b := p.Traverse(dst, 0xfeed, 96, p.SliceOf(at), 100*time.Microsecond)
		if a != b {
			t.Fatalf("traversal not pure: %+v vs %+v", a, b)
		}
	}
	if !a.Hit {
		t.Fatal("vantage link should hit")
	}
	if a.Sojourn < 10*time.Microsecond {
		t.Fatalf("sojourn %v below propagation delay", a.Sojourn)
	}
}

func TestTraverseMissWithoutMatch(t *testing.T) {
	p := testPlan(t)
	o := p.Traverse(mustAddr(t, "2001:db8:ffff::1"), 1, 96, 0, 0)
	if o.Hit {
		t.Fatalf("unmatched destination traversed a link: %+v", o)
	}
	if o.Blocked() || o.Dropped() {
		t.Fatalf("zero outcome must not block: %+v", o)
	}
}

func TestDefaultLinkCatchesAll(t *testing.T) {
	p := &Plan{Seed: 7, Default: &Params{PropDelay: time.Microsecond}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Build()
	o := p.Traverse(mustAddr(t, "2001:db8:ffff::1"), 1, 96, 0, 0)
	if !o.Hit || o.Sojourn != time.Microsecond {
		t.Fatalf("default link: %+v", o)
	}
}

func TestChurnFlipsReachability(t *testing.T) {
	p := testPlan(t)
	dst := mustAddr(t, "2001:db8:1::42")
	before := p.Traverse(dst, 3, 96, 5, 0)
	if before.Withdrawn {
		t.Fatal("prefix withdrawn before schedule")
	}
	during := p.Traverse(dst, 3, 96, 15, 0)
	if !during.Withdrawn || !during.Dropped() || !during.Blocked() {
		t.Fatalf("slice 15 should be withdrawn: %+v", during)
	}
	after := p.Traverse(dst, 3, 96, 25, 0)
	if after.Withdrawn {
		t.Fatalf("prefix should be re-announced at slice 20: %+v", after)
	}
	if w := p.WithdrawnAt(15); w != 1 {
		t.Fatalf("WithdrawnAt(15) = %d, want 1", w)
	}
	if w := p.WithdrawnAt(25); w != 0 {
		t.Fatalf("WithdrawnAt(25) = %d, want 0", w)
	}
	if n := p.EventsAt(10); n != 1 {
		t.Fatalf("EventsAt(10) = %d, want 1", n)
	}
}

func TestChurnEpochResetsOccupancy(t *testing.T) {
	// The churn epoch folds into the occupancy hash: the same (flow,
	// instant) should generally sample a different depth after a flap.
	// Compare distributions across many flows to avoid hash luck.
	p := testPlan(t)
	dst := mustAddr(t, "2001:db8:1::42")
	same := 0
	for f := uint64(0); f < 256; f++ {
		a := p.Traverse(dst, f, 96, 5, 0)
		b := p.Traverse(dst, f, 96, 25, 0)
		// Different slices fold into the hash, so even without churn
		// these differ; assert only that depths aren't all identical.
		if a.Depth == b.Depth {
			same++
		}
	}
	if same == 256 {
		t.Fatal("occupancy ignores churn epoch and time")
	}
}

func TestSaturatedLinkDropsTail(t *testing.T) {
	p := &Plan{
		Seed:     1,
		Prefixes: map[netip.Prefix]Params{mustPrefix(t, "2001:db8:2::/48"): {QueuePackets: 4, Utilization: 1.0}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Build()
	dst := mustAddr(t, "2001:db8:2::1")
	drops := 0
	for f := uint64(0); f < 512; f++ {
		o := p.Traverse(dst, f, 96, 0, 0)
		if o.DropTail {
			drops++
			if o.Depth != 4 {
				t.Fatalf("tail drop depth %d, want capacity 4", o.Depth)
			}
		}
	}
	if drops < 500 {
		t.Fatalf("utilization 1.0 dropped only %d/512", drops)
	}
}

func TestQueueBytesBound(t *testing.T) {
	// QueueBytes smaller than one cross packet: any nonzero depth, or a
	// packet bigger than the byte bound, tail-drops.
	p := &Plan{
		Seed:     2,
		Prefixes: map[netip.Prefix]Params{mustPrefix(t, "2001:db8:3::/48"): {QueueBytes: 100, Utilization: 0.9}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Build()
	dst := mustAddr(t, "2001:db8:3::1")
	for f := uint64(0); f < 128; f++ {
		o := p.Traverse(dst, f, 96, 0, 0)
		if o.Depth > 0 && !o.DropTail {
			t.Fatalf("backlog %d packets exceeds 100-byte bound but delivered: %+v", o.Depth, o)
		}
	}
	if o := p.Traverse(dst, 1, 101, 0, 0); o.Hit && !o.Dropped() && o.Depth == 0 {
		t.Fatalf("oversized packet fit a 100-byte queue: %+v", o)
	}
}

func TestLateOutcome(t *testing.T) {
	p := &Plan{
		Seed:     3,
		Prefixes: map[netip.Prefix]Params{mustPrefix(t, "2001:db8:4::/48"): {PropDelay: time.Millisecond}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Build()
	o := p.Traverse(mustAddr(t, "2001:db8:4::1"), 1, 96, 0, 100*time.Microsecond)
	if !o.Hit || o.Dropped() || !o.Late || !o.Blocked() {
		t.Fatalf("1ms sojourn under 100us patience should be late: %+v", o)
	}
	o = p.Traverse(mustAddr(t, "2001:db8:4::1"), 1, 96, 0, 10*time.Millisecond)
	if o.Late || o.Blocked() {
		t.Fatalf("1ms sojourn under 10ms patience should pass: %+v", o)
	}
}

func TestOccupancyGeometric(t *testing.T) {
	// Empirical check of P(depth >= 1) ~ rho over many mixed words.
	h := planHash(12345, 'Q')
	n, nonzero := 20000, 0
	for i := 0; i < n; i++ {
		z := h.word(uint64(i)).mix()
		if occupancy(z, 0.5) >= 1 {
			nonzero++
		}
	}
	frac := float64(nonzero) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("P(depth>=1) = %v, want ~0.5", frac)
	}
	if occupancy(12345, 0) != 0 {
		t.Fatal("rho=0 must give empty queue")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative delay", Plan{Default: &Params{PropDelay: -1}}},
		{"negative queue", Plan{Default: &Params{QueuePackets: -1}}},
		{"utilization over one", Plan{Default: &Params{Utilization: 1.5}}},
		{"non-48 prefix", Plan{Prefixes: map[netip.Prefix]Params{netip.MustParsePrefix("2001:db8::/32"): {}}}},
		{"churn non-48", Plan{Churn: []ChurnEvent{{Prefix: netip.MustParsePrefix("2001:db8::/64"), Slice: 1}}, SliceLen: time.Second, Epoch: time.Unix(1, 0)}},
		{"churn negative slice", Plan{Churn: []ChurnEvent{{Prefix: netip.MustParsePrefix("2001:db8::/48"), Slice: -1}}, SliceLen: time.Second, Epoch: time.Unix(1, 0)}},
		{"churn without grid", Plan{Churn: []ChurnEvent{{Prefix: netip.MustParsePrefix("2001:db8::/48"), Slice: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad plan", tc.name)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := testPlan(t)
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("codec not byte-stable:\n%s\n%s", enc, enc2)
	}
	// Decoded plan must traverse identically.
	dst := mustAddr(t, "2001:db8:1::42")
	if a, b := p.Traverse(dst, 9, 96, 5, 0), q.Traverse(dst, 9, 96, 5, 0); a != b {
		t.Fatalf("decoded plan diverges: %+v vs %+v", a, b)
	}
}

func TestDecodeRejects(t *testing.T) {
	for name, data := range map[string]string{
		"unknown field": `{"seed":1,"bandwidth":5}`,
		"trailing data": `{"seed":1}{"seed":2}`,
		"bad params":    `{"seed":1,"default":{"utilization":2}}`,
		"not json":      `seed=1`,
	} {
		if _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, data)
		}
	}
}

func TestMetricsConservation(t *testing.T) {
	r := obs.NewRegistry()
	m := NewMetrics(r)
	p := &Plan{
		Seed: 4,
		Prefixes: map[netip.Prefix]Params{
			mustPrefix(t, "2001:db8:5::/48"): {QueuePackets: 2, Utilization: 0.8, BytesPerSec: 1 << 20},
		},
		Churn:    []ChurnEvent{{Prefix: mustPrefix(t, "2001:db8:5::/48"), Slice: 50, Withdraw: true}},
		Epoch:    time.Unix(1000, 0).UTC(),
		SliceLen: time.Second,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Build()
	dst := mustAddr(t, "2001:db8:5::1")
	for f := uint64(0); f < 400; f++ {
		m.Account(p.Traverse(dst, f, 96, int(f%100), 40*time.Microsecond))
	}
	m.Account(Outcome{}) // miss must not book
	var nilm *Metrics
	nilm.Account(Outcome{Hit: true}) // nil receiver must not panic

	enq := m.Enqueued.Value()
	del := m.Delivered.Value()
	tail := m.DroppedTail.Value()
	churn := m.DroppedChurn.Value()
	if enq != 400 {
		t.Fatalf("enqueued %d, want 400", enq)
	}
	if enq != del+tail+churn {
		t.Fatalf("conservation: %d != %d+%d+%d", enq, del, tail, churn)
	}
	if churn == 0 || tail == 0 || del == 0 {
		t.Fatalf("workload should hit all outcomes: del=%d tail=%d churn=%d", del, tail, churn)
	}
	if m.Sojourn.Count() != del {
		t.Fatalf("sojourn count %d != delivered %d", m.Sojourn.Count(), del)
	}
	if m.Depth.Count() != del+tail {
		t.Fatalf("depth count %d != delivered+tail %d", m.Depth.Count(), del+tail)
	}
	if m.Late.Value() > del {
		t.Fatalf("late %d > delivered %d", m.Late.Value(), del)
	}
}
