// Package link is netsim's deterministic link-layer emulation. Every
// flow whose destination resolves to an emulated link traverses a
// finite queue with a bandwidth term (serialization delay per byte),
// propagation delay, seeded jitter, and a drop-tail policy, plus a
// route-churn schedule of per-prefix announce/withdraw events that flip
// reachability and reset queue state at slice boundaries.
//
// Nothing here sleeps and nothing holds mutable queue state. A packet's
// traversal is a pure function of (plan, destination, flow identity,
// logical time): the cross-traffic backlog it finds is sampled from a
// geometric occupancy distribution — P(depth >= k) = Utilization^k, the
// steady-state M/M/1 queue-length law — via a seeded hash, so the queue
// a packet "joins" never depends on goroutine interleaving or on which
// worker sent the neighbouring packet. Queueing delay is stamped onto
// the outcome, never slept: a fully congested campaign runs at the same
// wall-clock speed as a clean one, and a sojourn past the flow's
// deadline surfaces as a timeout instead of a pause.
package link

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"
)

// CrossPacketBytes is the modelled size of one cross-traffic packet in
// a link queue: the backlog a packet finds is Depth of these.
const CrossPacketBytes = 512

// DefaultQueuePackets bounds a queue whose Params left QueuePackets
// zero.
const DefaultQueuePackets = 64

// Params describes one emulated link. The zero value is an ideal link:
// unbounded-by-bytes default-depth queue, infinite bandwidth, no
// propagation delay, no cross traffic, no jitter — traversal always
// succeeds with zero sojourn.
type Params struct {
	// QueuePackets is the queue capacity in packets (drop-tail beyond
	// it). Zero selects DefaultQueuePackets.
	QueuePackets int `json:"queue_packets,omitempty"`
	// QueueBytes optionally bounds the queue in bytes: a packet that
	// would push the backlog past it is tail-dropped. Zero disables the
	// byte bound.
	QueueBytes int `json:"queue_bytes,omitempty"`
	// BytesPerSec is the serialization rate: each queued byte (backlog
	// plus the packet itself) costs 1/BytesPerSec seconds of sojourn.
	// Zero means infinite bandwidth.
	BytesPerSec int64 `json:"bytes_per_sec,omitempty"`
	// PropDelay is the propagation delay added to every traversal.
	PropDelay time.Duration `json:"prop_delay_ns,omitempty"`
	// Utilization is the cross-traffic intensity rho in [0, 1]: the
	// backlog a packet finds is geometric with P(depth >= k) = rho^k.
	// 1 saturates the queue (clamped just below 1 internally, so
	// almost every arrival tail-drops).
	Utilization float64 `json:"utilization,omitempty"`
	// JitterMax bounds the seeded per-packet jitter added to the
	// sojourn, uniform in [0, JitterMax].
	JitterMax time.Duration `json:"jitter_max_ns,omitempty"`
}

func (p *Params) validate(scope string) error {
	if p.QueuePackets < 0 {
		return fmt.Errorf("link: %s: negative queue_packets %d", scope, p.QueuePackets)
	}
	if p.QueueBytes < 0 {
		return fmt.Errorf("link: %s: negative queue_bytes %d", scope, p.QueueBytes)
	}
	if p.BytesPerSec < 0 {
		return fmt.Errorf("link: %s: negative bytes_per_sec %d", scope, p.BytesPerSec)
	}
	if p.PropDelay < 0 {
		return fmt.Errorf("link: %s: negative prop_delay %v", scope, p.PropDelay)
	}
	if p.JitterMax < 0 {
		return fmt.Errorf("link: %s: negative jitter_max %v", scope, p.JitterMax)
	}
	if p.Utilization < 0 || p.Utilization > 1 || math.IsNaN(p.Utilization) {
		return fmt.Errorf("link: %s: utilization %v outside [0, 1]", scope, p.Utilization)
	}
	return nil
}

// ChurnEvent is one route-churn entry: at the start of Slice the prefix
// is withdrawn (reachability flips off, queues drain into the void) or
// re-announced (reachability returns, queues restart empty — the churn
// epoch below folds into the occupancy hash, which is the "reset").
type ChurnEvent struct {
	Prefix netip.Prefix `json:"prefix"`
	Slice  int          `json:"slice"`
	// Withdraw selects the direction: true withdraws the prefix, false
	// (re-)announces it.
	Withdraw bool `json:"withdraw,omitempty"`
}

// Plan is a link-layer schedule: per-vantage and per-/48 link
// parameters plus the route-churn schedule. Like a FaultPlan it is pure
// data — build it (or Decode it), install it via netsim.FaultPlan.Links,
// and never mutate it afterwards.
type Plan struct {
	// Seed drives every stochastic traversal decision. Independent of
	// the fault-plan seed so link and fault draws never correlate.
	Seed uint64 `json:"seed"`
	// Default, when set, is the link every destination traverses unless
	// a more specific entry matches. Each destination /48 gets its own
	// default queue.
	Default *Params `json:"default,omitempty"`
	// Vantages maps exact addresses (vantage servers, scan sources) to
	// their access link.
	Vantages map[netip.Addr]Params `json:"vantages,omitempty"`
	// Prefixes maps /48 routing aggregates to their link.
	Prefixes map[netip.Prefix]Params `json:"prefixes,omitempty"`
	// Churn is the route-churn schedule, applied in slice order;
	// entries at the same slice apply in list order.
	Churn []ChurnEvent `json:"churn,omitempty"`
	// Epoch anchors the slice grid Churn is scheduled on; SliceLen is
	// the grid pitch. SliceOf(at) = (at - Epoch) / SliceLen.
	Epoch    time.Time     `json:"epoch,omitempty"`
	SliceLen time.Duration `json:"slice_len_ns,omitempty"`

	// churnByPrefix indexes Churn entries per masked prefix, in
	// schedule order. Built by Build.
	churnByPrefix map[netip.Prefix][]int
}

// Validate checks the plan's shape: parameter ranges, /48-only prefix
// scopes, and a positive slice grid whenever churn is scheduled.
func (p *Plan) Validate() error {
	if p.Default != nil {
		if err := p.Default.validate("default"); err != nil {
			return err
		}
	}
	for a, prm := range p.Vantages {
		if !a.IsValid() {
			return fmt.Errorf("link: invalid vantage address")
		}
		if err := prm.validate("vantage " + a.String()); err != nil {
			return err
		}
	}
	for pfx, prm := range p.Prefixes {
		if !pfx.IsValid() || pfx.Bits() != 48 {
			return fmt.Errorf("link: prefix scope %v is not a /48", pfx)
		}
		if err := prm.validate("prefix " + pfx.String()); err != nil {
			return err
		}
	}
	for i, ev := range p.Churn {
		if !ev.Prefix.IsValid() || ev.Prefix.Bits() != 48 {
			return fmt.Errorf("link: churn[%d] prefix %v is not a /48", i, ev.Prefix)
		}
		if ev.Slice < 0 {
			return fmt.Errorf("link: churn[%d] negative slice %d", i, ev.Slice)
		}
	}
	if len(p.Churn) > 0 {
		if p.SliceLen <= 0 {
			return fmt.Errorf("link: churn scheduled but slice_len_ns is %d", p.SliceLen)
		}
		if p.Epoch.IsZero() {
			return fmt.Errorf("link: churn scheduled but epoch is unset")
		}
	}
	if p.SliceLen < 0 {
		return fmt.Errorf("link: negative slice_len_ns %d", p.SliceLen)
	}
	return nil
}

// Build prepares the churn index. Call once before traversals; Decode
// calls it for you. The plan must not be mutated afterwards.
func (p *Plan) Build() {
	p.churnByPrefix = make(map[netip.Prefix][]int)
	for i := range p.Churn {
		k := p.Churn[i].Prefix.Masked()
		p.churnByPrefix[k] = append(p.churnByPrefix[k], i)
	}
	for _, idxs := range p.churnByPrefix {
		sort.SliceStable(idxs, func(a, b int) bool {
			return p.Churn[idxs[a]].Slice < p.Churn[idxs[b]].Slice
		})
	}
}

// Encode serialises the plan as canonical JSON: map keys marshal
// through their text form and encoding/json sorts them, so equal plans
// encode to equal bytes.
func (p *Plan) Encode() ([]byte, error) {
	return json.Marshal(p)
}

// Decode parses, validates, and builds a plan. Unknown fields are
// rejected — a plan file with a typoed knob must not silently emulate
// an ideal network.
func Decode(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	p := new(Plan)
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("link: decode: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("link: decode: trailing data after plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Build()
	return p, nil
}

// SliceOf maps an instant onto the plan's churn slice grid (clamped at
// zero before the epoch; always zero when no grid is configured).
func (p *Plan) SliceOf(at time.Time) int {
	if p.SliceLen <= 0 {
		return 0
	}
	d := at.Sub(p.Epoch)
	if d < 0 {
		return 0
	}
	return int(d / p.SliceLen)
}

// churnState folds the prefix's schedule up to and including slice s:
// whether the prefix is currently withdrawn, and the churn epoch (how
// many events have applied — folded into the occupancy hash so each
// flap restarts the queue process).
func (p *Plan) churnState(pfx netip.Prefix, s int) (withdrawn bool, epoch int) {
	for _, i := range p.churnByPrefix[pfx] {
		ev := &p.Churn[i]
		if ev.Slice > s {
			break
		}
		withdrawn = ev.Withdraw
		epoch++
	}
	return withdrawn, epoch
}

// EventsAt counts the churn events that apply exactly at slice s — the
// per-boundary accounting the campaign driver folds into the
// link_churn_events_total counter.
func (p *Plan) EventsAt(s int) int {
	n := 0
	for i := range p.Churn {
		if p.Churn[i].Slice == s {
			n++
		}
	}
	return n
}

// WithdrawnAt counts the prefixes withdrawn as of slice s (the
// link_withdrawn_prefixes gauge).
func (p *Plan) WithdrawnAt(s int) int {
	n := 0
	for pfx := range p.churnByPrefix {
		if w, _ := p.churnState(pfx, s); w {
			n++
		}
	}
	return n
}

// resolve finds the link governing a destination: exact vantage match,
// then the /48 prefix map, then the default. The returned identity
// seeds the occupancy hash — per-vantage links queue per address,
// prefix and default links queue per destination /48.
func (p *Plan) resolve(dst netip.Addr) (prm Params, id netip.Addr, ok bool) {
	if prm, ok = p.Vantages[dst]; ok {
		return prm, dst, true
	}
	pfx, err := dst.Prefix(48)
	if err != nil {
		return Params{}, netip.Addr{}, false
	}
	if prm, ok = p.Prefixes[pfx]; ok {
		return prm, pfx.Addr(), true
	}
	if p.Default != nil {
		return *p.Default, pfx.Addr(), true
	}
	return Params{}, netip.Addr{}, false
}

// Outcome is one packet's traversal result.
type Outcome struct {
	// Hit reports whether a link governed the flow at all; every other
	// field is meaningful only when it is set.
	Hit bool
	// Withdrawn: the destination's prefix is withdrawn by route churn —
	// the packet fell into the void before reaching any queue.
	Withdrawn bool
	// DropTail: the packet found the queue full and was tail-dropped.
	DropTail bool
	// Depth is the cross-traffic backlog (in packets) the packet found;
	// for tail drops, the capacity it bounced off.
	Depth int
	// Sojourn is the stamped queueing + serialization + propagation +
	// jitter delay of a delivered packet.
	Sojourn time.Duration
	// Late: delivered, but the sojourn exceeds the flow's patience —
	// the flow sees a timeout.
	Late bool
}

// Dropped reports whether the packet never came out of the link.
func (o Outcome) Dropped() bool { return o.Withdrawn || o.DropTail }

// Blocked reports whether the flow fails: dropped, or delivered too
// late to matter.
func (o Outcome) Blocked() bool { return o.Dropped() || o.Late }

// Traverse runs one packet of pktBytes through the link resolved for
// dst during churn slice s (see SliceOf; callers that track slices
// themselves — the campaign driver does — pass their own index, which
// is what keeps single-process and cluster runs agreeing even when
// their intra-slice clock readings differ). flow is the
// caller-supplied flow-identity hash (addresses, port, payload,
// attempt — never ephemeral state); patience, when positive, is the
// deadline that turns a long sojourn into a Late outcome. Pure: equal
// arguments yield equal outcomes.
func (p *Plan) Traverse(dst netip.Addr, flow uint64, pktBytes int, s int, patience time.Duration) Outcome {
	prm, id, ok := p.resolve(dst)
	if !ok {
		return Outcome{}
	}
	out := Outcome{Hit: true}

	var epoch int
	if pfx, err := dst.Prefix(48); err == nil && len(p.churnByPrefix) > 0 {
		var withdrawn bool
		withdrawn, epoch = p.churnState(pfx, s)
		if withdrawn {
			out.Withdrawn = true
			return out
		}
	}

	capacity := prm.QueuePackets
	if capacity <= 0 {
		capacity = DefaultQueuePackets
	}
	// Stochastic draws fold the slice index, never a raw instant. The
	// queue process advances once per slice and resets with each churn
	// epoch.
	h := planHash(p.Seed, 'Q')
	h = h.addr(id).word(flow).word(uint64(epoch)).word(uint64(s))
	depth := occupancy(h.mix(), prm.Utilization)
	if depth >= capacity {
		out.DropTail = true
		out.Depth = capacity
		return out
	}
	backlog := depth * CrossPacketBytes
	if prm.QueueBytes > 0 && backlog+pktBytes > prm.QueueBytes {
		out.DropTail = true
		out.Depth = depth
		return out
	}
	out.Depth = depth

	soj := prm.PropDelay
	if prm.BytesPerSec > 0 {
		soj += time.Duration((int64(backlog) + int64(pktBytes)) * int64(time.Second) / prm.BytesPerSec)
	}
	if prm.JitterMax > 0 {
		j := planHash(p.Seed, 'J').addr(id).word(flow).word(uint64(epoch)).word(uint64(s))
		soj += time.Duration(j.mix() % uint64(prm.JitterMax+1))
	}
	out.Sojourn = soj
	out.Late = patience > 0 && soj > patience
	return out
}

// occupancy samples the geometric queue-occupancy law P(depth >= k) =
// rho^k from a well-mixed hash word: u uniform in (0, 1],
// depth = floor(log u / log rho).
func occupancy(z uint64, rho float64) int {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		rho = 1 - 1e-9 // saturated: effectively every arrival queues deep
	}
	u := float64(z>>11) / (1 << 53)
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	d := math.Log(u) / math.Log(rho)
	if d < 0 {
		return 0
	}
	if d > 1<<20 {
		return 1 << 20
	}
	return int(d)
}

// --- flow hashing ---------------------------------------------------
//
// The same FNV-fold / splitmix-finalise construction netsim's fault
// decisions use, kept package-local so a plan's draws are a pure
// function of its own seed.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type hash uint64

func planHash(seed uint64, tag byte) hash {
	h := hash(fnvOffset)
	h = h.word(seed)
	h = (h ^ hash(tag)) * fnvPrime
	return h
}

func (h hash) word(v uint64) hash {
	for i := 0; i < 8; i++ {
		h = (h ^ hash(byte(v>>(8*i)))) * fnvPrime
	}
	return h
}

func (h hash) addr(a netip.Addr) hash {
	b := a.As16()
	for _, x := range b {
		h = (h ^ hash(x)) * fnvPrime
	}
	return h
}

// mix finalises the fold into a well-distributed word (splitmix64).
func (h hash) mix() uint64 {
	z := uint64(h)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
