package link

import (
	"bytes"
	"testing"
)

// FuzzLinkPlanDecode exercises the LinkPlan JSON codec: Decode must
// never panic, and every accepted plan must re-encode byte-stably
// (Encode∘Decode∘Encode is the identity on the first Encode) and
// survive Validate — the property the pinned-plan chaos legs lean on.
func FuzzLinkPlanDecode(f *testing.F) {
	f.Add([]byte(`{"seed":1}`))
	f.Add([]byte(`{"seed":42,"default":{"queue_packets":8,"bytes_per_sec":1048576,"prop_delay_ns":10000,"utilization":0.9,"jitter_max_ns":5000}}`))
	f.Add([]byte(`{"seed":7,"prefixes":{"2001:db8:1::/48":{"queue_packets":4}},"churn":[{"prefix":"2001:db8:1::/48","slice":10,"withdraw":true},{"prefix":"2001:db8:1::/48","slice":20}],"epoch":"2025-01-01T00:00:00Z","slice_len_ns":1000000000}`))
	f.Add([]byte(`{"seed":1,"default":{"queue_packets":0,"queue_bytes":0}}`))
	f.Add([]byte(`{"seed":1,"default":{"prop_delay_ns":-5}}`))
	f.Add([]byte(`{"seed":3,"churn":[{"prefix":"2001:db8:2::/48","slice":5,"withdraw":true},{"prefix":"2001:db8:2::/48","slice":5},{"prefix":"2001:db8:2::/48","slice":3,"withdraw":true}],"epoch":"2025-01-01T00:00:00Z","slice_len_ns":1000000000}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v", err)
		}
		q, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\n%s", err, enc)
		}
		enc2, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("codec not byte-stable:\n%s\n%s", enc, enc2)
		}
	})
}
