package netsim

import (
	"sync"
	"time"
)

// Clock abstracts time for the simulation. The scan pipeline stamps
// events through a Clock so mass experiments can run on a manual clock
// (advancing weeks of collection time in milliseconds of wall time) while
// the real-socket tools use the system clock.
type Clock interface {
	Now() time.Time
}

// RealClock is the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// ManualClock is a logical clock advanced explicitly by the experiment
// driver. It is safe for concurrent use.
type ManualClock struct {
	mu      sync.RWMutex
	now     time.Time
	changed chan struct{}
}

// NewManualClock returns a manual clock starting at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Changed returns a channel that is closed the next time the clock
// moves. Logical-time waiters (e.g. a token bucket running on simulated
// time) grab the channel, re-read Now, and block on the channel — the
// grab-before-read order guarantees an advance between the read and the
// wait is never missed.
func (c *ManualClock) Changed() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.changed == nil {
		c.changed = make(chan struct{})
	}
	return c.changed
}

// signal wakes Changed waiters. Callers must hold mu.
func (c *ManualClock) signal() {
	if c.changed != nil {
		close(c.changed)
		c.changed = nil
	}
}

// Advance moves the clock forward by d and returns the new time. It
// panics on negative d — the simulation is strictly monotonic.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic("netsim: ManualClock.Advance with negative duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
		c.signal()
	}
	return c.now
}

// Set jumps the clock to t. It panics if t is before the current time.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic("netsim: ManualClock.Set moving backwards")
	}
	if t.After(c.now) {
		c.now = t
		c.signal()
	}
}
