package netsim

import "net"

// Typed dial/socket errors. They implement net.Error so callers can
// classify failures structurally (Timeout/Temporary) instead of
// matching error strings — the scanner's retry layer depends on this.

// Error is a simulated network error carrying the kernel-style
// timeout/temporary classification.
type Error struct {
	msg       string
	timeout   bool
	temporary bool
}

// Error implements error.
func (e *Error) Error() string { return e.msg }

// Timeout implements net.Error: the operation failed because nothing
// answered before a deadline (filtered port, unrouted space, injected
// outage or loss).
func (e *Error) Timeout() bool { return e.timeout }

// Temporary implements net.Error: retrying may succeed (timeouts can be
// transient loss; refusals are definitive).
func (e *Error) Temporary() bool { return e.temporary }

// Errors returned by dial and socket operations, mirroring kernel
// network errors. They are sentinel values: compare with errors.Is.
var (
	// ErrConnRefused is returned when the destination host exists but
	// the port is closed (RST semantics). Not a timeout, not temporary:
	// the host answered, definitively.
	ErrConnRefused = &Error{msg: "netsim: connection refused"}
	// ErrTimeout is returned when the destination never answers
	// (filtered port, unrouted address, injected fault, or lossy
	// blackhole). Timeout and temporary: the cause may be transient.
	ErrTimeout = &Error{msg: "netsim: i/o timeout", timeout: true, temporary: true}
	// ErrPortInUse is returned when binding an already-bound UDP socket.
	ErrPortInUse = &Error{msg: "netsim: address already in use"}
)

// Dial-path *net.OpError singletons. Every failed dial used to wrap its
// sentinel in a fresh OpError — and callers that stringify the failure
// (scan results record err.Error()) then paid a second allocation per
// probe for an identical message. Sharing the values is safe: OpError
// is immutable once built and these carry no per-call state.
var (
	errDialRefused = &net.OpError{Op: "dial", Net: "tcp", Err: ErrConnRefused}
	errDialTimeout = &net.OpError{Op: "dial", Net: "tcp", Err: ErrTimeout}

	errDialRefusedStr = errDialRefused.Error()
	errDialTimeoutStr = errDialTimeout.Error()
)

// DialRefused returns the shared refused-dial *net.OpError — the wire
// face of a host that is down and answering RSTs. The cluster
// transport's fault seam returns it for control calls from a crashed
// node, so callers classify the failure exactly as they would a kernel
// ECONNREFUSED.
func DialRefused() error { return errDialRefused }

// DialTimeout returns the shared timed-out-dial *net.OpError — the wire
// face of a blackholed path: the request left, nothing ever came back.
// The cluster transport's fault seam returns it for control calls from
// a partitioned node and for heartbeats delayed past the coordinator's
// grace.
func DialTimeout() error { return errDialTimeout }

// DialErrString returns err.Error() without allocating when err is one
// of the fabric's shared dial errors. Scan-result recording calls this
// on every failed probe.
func DialErrString(err error) string {
	switch err {
	case errDialRefused:
		return errDialRefusedStr
	case errDialTimeout:
		return errDialTimeoutStr
	case ErrConnRefused:
		return ErrConnRefused.msg
	case ErrTimeout:
		return ErrTimeout.msg
	}
	return err.Error()
}
