package netsim

// Typed dial/socket errors. They implement net.Error so callers can
// classify failures structurally (Timeout/Temporary) instead of
// matching error strings — the scanner's retry layer depends on this.

// Error is a simulated network error carrying the kernel-style
// timeout/temporary classification.
type Error struct {
	msg       string
	timeout   bool
	temporary bool
}

// Error implements error.
func (e *Error) Error() string { return e.msg }

// Timeout implements net.Error: the operation failed because nothing
// answered before a deadline (filtered port, unrouted space, injected
// outage or loss).
func (e *Error) Timeout() bool { return e.timeout }

// Temporary implements net.Error: retrying may succeed (timeouts can be
// transient loss; refusals are definitive).
func (e *Error) Temporary() bool { return e.temporary }

// Errors returned by dial and socket operations, mirroring kernel
// network errors. They are sentinel values: compare with errors.Is.
var (
	// ErrConnRefused is returned when the destination host exists but
	// the port is closed (RST semantics). Not a timeout, not temporary:
	// the host answered, definitively.
	ErrConnRefused = &Error{msg: "netsim: connection refused"}
	// ErrTimeout is returned when the destination never answers
	// (filtered port, unrouted address, injected fault, or lossy
	// blackhole). Timeout and temporary: the cause may be transient.
	ErrTimeout = &Error{msg: "netsim: i/o timeout", timeout: true, temporary: true}
	// ErrPortInUse is returned when binding an already-bound UDP socket.
	ErrPortInUse = &Error{msg: "netsim: address already in use"}
)
