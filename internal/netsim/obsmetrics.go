package netsim

import "ntpscan/internal/obs"

// FaultMetrics counts fault-plan interventions on the fabric. Every
// underlying decision is a pure hash of (plan seed, flow identity,
// logical time) — see faults.go — so these totals are deterministic at
// any quiescent point regardless of worker interleaving.
type FaultMetrics struct {
	DialBlackholes *obs.Counter // TCP dials killed by an outage, injected latency, or burst SYN loss
	UDPDrops       *obs.Counter // datagrams swallowed by an outage, injected latency, or burst loss
	Garbles        *obs.Counter // connections wrapped / responses corrupted by a garble fault
}

// NewFaultMetrics registers the fabric's fault families on r.
func NewFaultMetrics(r *obs.Registry) *FaultMetrics {
	return &FaultMetrics{
		DialBlackholes: r.NewCounter("fault_dial_blackholes_total", "TCP dials blackholed by the fault plan"),
		UDPDrops:       r.NewCounter("fault_udp_drops_total", "UDP datagrams dropped by the fault plan"),
		Garbles:        r.NewCounter("fault_garbles_total", "exchanges corrupted by a garble fault"),
	}
}

// SetFaultMetrics attaches (or, with nil, detaches) fault counters to
// the fabric. Uniform background loss (Config.LossProb) is part of the
// modelled network, not the fault plan, and is not counted here.
func (n *Network) SetFaultMetrics(m *FaultMetrics) {
	n.fm.Store(m)
}

func (n *Network) faultMetrics() *FaultMetrics { return n.fm.Load() }
