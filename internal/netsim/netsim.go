// Package netsim is the virtual IPv6 Internet the reproduction runs on.
//
// It stands in for the paper's actual measurement substrate — the public
// Internet — which is not available here. Hosts register addresses and
// per-port handlers; scanners dial them through a net-compatible API and
// cannot distinguish the fabric from real sockets: streams implement
// net.Conn with deadlines, closed ports refuse, filtered hosts time out,
// unrouted space blackholes, and links can drop packets.
//
// Hosts are passive. No goroutine exists for a host until something
// connects to it, so populations of millions of devices cost only their
// descriptors.
package netsim

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ntpscan/internal/netsim/link"
)

// StreamHandler serves one accepted stream connection, like the argument
// to a net/http-style server loop. The handler owns conn and must close
// it when done (the dialer side closes independently).
type StreamHandler func(conn net.Conn)

// PacketHandler handles one inbound UDP datagram addressed to a host
// port. Returned slices are sent back to the source as individual
// datagrams; nil means no response.
type PacketHandler func(from netip.AddrPort, payload []byte) [][]byte

// Host is a simulated machine. A host may be registered under several
// addresses (multi-homing, dynamic renumbering). The zero value is a host
// with every port closed.
type Host struct {
	// Name is a diagnostic label (device model, role).
	Name string
	// TCP maps open TCP ports to their handlers.
	TCP map[uint16]StreamHandler
	// UDP maps open UDP ports to their handlers.
	UDP map[uint16]PacketHandler
	// Filtered selects firewall behaviour for non-open ports: true
	// drops probes silently (scanner sees a timeout), false refuses
	// (scanner sees ECONNREFUSED). Consumer CPE typically filters.
	Filtered bool
}

// NewHost returns an empty host with the given label.
func NewHost(name string) *Host {
	return &Host{Name: name, TCP: map[uint16]StreamHandler{}, UDP: map[uint16]PacketHandler{}}
}

// HandleTCP opens a TCP port with the given handler and returns the host
// for chaining.
func (h *Host) HandleTCP(port uint16, fn StreamHandler) *Host {
	if h.TCP == nil {
		h.TCP = map[uint16]StreamHandler{}
	}
	h.TCP[port] = fn
	return h
}

// HandleUDP opens a UDP port with the given handler.
func (h *Host) HandleUDP(port uint16, fn PacketHandler) *Host {
	if h.UDP == nil {
		h.UDP = map[uint16]PacketHandler{}
	}
	h.UDP[port] = fn
	return h
}

// PacketInfo describes one observed transport event for sniffers: a TCP
// connection attempt (SYN equivalent) or a UDP datagram.
type PacketInfo struct {
	Time    time.Time
	Proto   string // "tcp" or "udp"
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Payload []byte // UDP payload; nil for TCP attempts
}

// SnifferFunc receives packets destined to a monitored prefix. It runs
// synchronously on the sender's path, so implementations must be fast and
// must not dial back into the network inline.
type SnifferFunc func(PacketInfo)

// Config tunes fabric behaviour.
type Config struct {
	// Clock stamps sniffed packets and connection events. Defaults to
	// RealClock.
	Clock Clock
	// DialTimeout bounds how long a blackholed dial blocks when the
	// caller's context has no deadline. Defaults to 2 seconds.
	DialTimeout time.Duration
	// LossProb drops each UDP datagram with this probability. The
	// decision is a pure hash of the datagram's flow identity and Seed,
	// so it is independent of goroutine interleaving.
	LossProb float64
	// Seed seeds the fabric's internal randomness (loss decisions).
	Seed uint64
}

// Network is the fabric. All methods are safe for concurrent use.
type Network struct {
	cfg   Config
	clock Clock

	mu    sync.RWMutex
	hosts map[netip.Addr]*Host
	// prefixHosts answer for every address in a /64 (aliased prefixes:
	// CDN front ends where the whole block responds).
	prefixHosts map[netip.Prefix]*Host
	udpBinds    map[netip.AddrPort]*UDPConn
	sniffers    []snifferEntry

	// faults holds the installed FaultPlan (nil box or nil plan = no
	// faults). Atomic so plans can be swapped mid-run.
	faults atomic.Pointer[faultBox]

	dials   atomic.Int64 // TCP dial attempts
	packets atomic.Int64 // UDP datagrams sent

	// fm, when set, counts fault-plan interventions (see obsmetrics.go).
	fm atomic.Pointer[FaultMetrics]
	// lm, when set, books link-traversal outcomes (see linkfabric.go).
	lm atomic.Pointer[link.Metrics]
	// linkSlice is the pinned route-churn slice, advanced by
	// NoteLinkSlice at campaign slice boundaries.
	linkSlice atomic.Int64
}

type snifferEntry struct {
	prefix netip.Prefix
	fn     SnifferFunc
}

// New returns an empty network.
func New(cfg Config) *Network {
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	return &Network{
		cfg:         cfg,
		clock:       cfg.Clock,
		hosts:       make(map[netip.Addr]*Host),
		prefixHosts: make(map[netip.Prefix]*Host),
		udpBinds:    make(map[netip.AddrPort]*UDPConn),
	}
}

// Clock returns the fabric clock.
func (n *Network) Clock() Clock { return n.clock }

// Register binds addr to host. Registering an address twice replaces the
// previous binding (address reassignment).
func (n *Network) Register(addr netip.Addr, h *Host) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[addr] = h
}

// Unregister removes the binding for addr, turning it into unrouted
// space.
func (n *Network) Unregister(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, addr)
}

// RegisterPrefix binds every address in the /64 containing p's base to
// host (aliased-prefix semantics). Exact-address bindings take
// precedence. Prefixes other than /64 are rejected — real aliased
// detection operates at /64 and wider blocks are unrealistic to answer
// wholesale.
func (n *Network) RegisterPrefix(p netip.Prefix, h *Host) error {
	if p.Bits() != 64 {
		return fmt.Errorf("netsim: RegisterPrefix wants a /64, got %v", p)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.prefixHosts[p.Masked()] = h
	return nil
}

// HostAt returns the host currently answering at addr: an exact binding
// if one exists, otherwise an aliased-prefix binding.
func (n *Network) HostAt(addr netip.Addr) (*Host, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hostAtLocked(addr)
}

func (n *Network) hostAtLocked(addr netip.Addr) (*Host, bool) {
	if h, ok := n.hosts[addr]; ok {
		return h, true
	}
	if len(n.prefixHosts) > 0 {
		if p, err := addr.Prefix(64); err == nil {
			if h, ok := n.prefixHosts[p]; ok {
				return h, true
			}
		}
	}
	return nil, false
}

// NumHosts returns the number of bound addresses.
func (n *Network) NumHosts() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.hosts)
}

// Sniff registers fn for all traffic destined into prefix (the
// telescope's tcpdump). It returns a function removing the sniffer.
func (n *Network) Sniff(prefix netip.Prefix, fn SnifferFunc) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := snifferEntry{prefix: prefix.Masked(), fn: fn}
	n.sniffers = append(n.sniffers, e)
	idx := len(n.sniffers) - 1
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if idx < len(n.sniffers) {
			n.sniffers[idx].fn = nil
		}
	}
}

func (n *Network) notifySniffers(pi PacketInfo) {
	n.mu.RLock()
	entries := n.sniffers
	n.mu.RUnlock()
	for _, e := range entries {
		if e.fn != nil && e.prefix.Contains(pi.Dst.Addr()) {
			e.fn(pi)
		}
	}
}

// Stats returns cumulative dial attempts and UDP datagrams.
func (n *Network) Stats() (tcpDials, udpPackets int64) {
	return n.dials.Load(), n.packets.Load()
}

// DialTCP attempts a TCP connection from src to dst. Error semantics:
//
//   - open port: success, the host's handler runs in a new goroutine;
//   - closed port on a non-filtered host: ErrConnRefused immediately;
//   - closed port on a filtered host, or no host at dst: blocks until
//     ctx is done or the dial timeout elapses, then ErrTimeout.
//
// Installed faults intervene before the host is consulted: an outage
// or a lost SYN blackholes the dial, excess injected latency times it
// out, and a garble fault wraps the returned stream so the response is
// truncated mid-banner.
func (n *Network) DialTCP(ctx context.Context, src netip.Addr, dst netip.AddrPort) (net.Conn, error) {
	now := n.clock.Now()
	n.dials.Add(1)
	n.notifySniffers(PacketInfo{
		Time: now, Proto: "tcp",
		Src: netip.AddrPortFrom(src, ephemeralPort(src, dst)), Dst: dst,
	})

	var eff faultEffects
	attempt := AttemptFrom(ctx)
	if plan := n.plan(); plan != nil {
		eff = plan.effectsOn(dst.Addr(), now)
		if eff.down || eff.latency > n.cfg.DialTimeout ||
			dropTCP(plan.Seed, src, dst, now, attempt, eff.loss) {
			if m := n.faultMetrics(); m != nil {
				m.DialBlackholes.Inc()
			}
			return n.blackholeDial(ctx)
		}
	}
	// The SYN then traverses the destination's emulated link: a tail
	// drop or a withdrawn route blackholes the dial, and a sojourn past
	// the dialer's patience is a timeout — stamped, never slept.
	if out := n.traverseTCP(src, dst, attempt); out.Hit && out.Blocked() {
		return n.blackholeDial(ctx)
	}

	n.mu.RLock()
	host, ok := n.hostAtLocked(dst.Addr())
	n.mu.RUnlock()

	if ok {
		if handler, open := host.TCP[dst.Port()]; open {
			client, server := NewConnPair(
				netip.AddrPortFrom(src, ephemeralPort(src, dst)), dst)
			if _, logical := n.clock.(*ManualClock); logical {
				client.ignoreDeadlines = true
				server.ignoreDeadlines = true
			}
			go handler(server)
			if eff.garble {
				plan := n.plan()
				if m := n.faultMetrics(); m != nil {
					m.Garbles.Inc()
				}
				return &garbledConn{
					Conn:   client,
					remain: garbleCut(plan.Seed, dst, now, attempt),
				}, nil
			}
			return client, nil
		}
		if !host.Filtered {
			return nil, errDialRefused
		}
	}
	return n.blackholeDial(ctx)
}

// blackholeDial waits out the caller's patience. On a manual clock the
// timeout is a logical-time event — no packet can arrive while the
// dial blocks (delivery is synchronous), so burning wall time here
// only throttles the simulation and the dial fails immediately.
func (n *Network) blackholeDial(ctx context.Context) (net.Conn, error) {
	if _, logical := n.clock.(*ManualClock); logical {
		return nil, errDialTimeout
	}
	timer := time.NewTimer(n.cfg.DialTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, errDialTimeout
	case <-timer.C:
		return nil, errDialTimeout
	}
}

// ephemeralPort derives a stable pseudo-ephemeral source port for a flow
// so logs and sniffer output are reproducible.
func ephemeralPort(src netip.Addr, dst netip.AddrPort) uint16 {
	b := src.As16()
	d := dst.Addr().As16()
	var h uint32 = 2166136261
	for _, x := range b {
		h = (h ^ uint32(x)) * 16777619
	}
	for _, x := range d {
		h = (h ^ uint32(x)) * 16777619
	}
	h = (h ^ uint32(dst.Port())) * 16777619
	return uint16(32768 + h%28232)
}

// dropDatagram applies the fabric's uniform loss plus any active
// burst-loss fault to one datagram. dir separates the request and
// response directions; the decision is a pure flow hash (see
// faults.go), so it never depends on goroutine interleaving. Client
// ephemeral ports are excluded from the hash — bind order under
// concurrency is not deterministic — so both directions hash the
// server-side port.
// byFault distinguishes plan-injected burst loss from the fabric's
// uniform background loss, so fault accounting counts only the former.
func (n *Network) dropDatagram(dir byte, from, to netip.Addr, serverPort uint16, payload []byte, burstLoss float64, at time.Time) (drop, byFault bool) {
	if n.cfg.LossProb > 0 &&
		dropUDP(n.cfg.Seed, dir, from, to, serverPort, payload, at, n.cfg.LossProb) {
		return true, false
	}
	if burstLoss > 0 {
		plan := n.plan()
		d := dropUDP(plan.Seed, dir|0x80, from, to, serverPort, payload, at, burstLoss)
		return d, d
	}
	return false, false
}

// SendUDP delivers one datagram from src to dst, outside any bound
// socket (fire-and-forget). Responses from host handlers are delivered to
// the UDPConn bound at src, if any; otherwise they are dropped.
//
// Faults scoped to the destination govern both directions of the
// exchange: an outage swallows everything, burst loss rolls per
// datagram, excess injected latency drops the exchange (nothing comes
// back within any deadline), and garble corrupts the responses.
func (n *Network) SendUDP(src, dst netip.AddrPort, payload []byte) {
	now := n.clock.Now()
	n.packets.Add(1)
	n.notifySniffers(PacketInfo{
		Time: now, Proto: "udp", Src: src, Dst: dst, Payload: payload,
	})

	var eff faultEffects
	if plan := n.plan(); plan != nil {
		eff = plan.effectsOn(dst.Addr(), now)
		if eff.down || eff.latency > n.cfg.DialTimeout {
			if m := n.faultMetrics(); m != nil {
				m.UDPDrops.Inc()
			}
			return
		}
	}
	if drop, byFault := n.dropDatagram('q', src.Addr(), dst.Addr(), dst.Port(), payload, eff.loss, now); drop {
		if byFault {
			if m := n.faultMetrics(); m != nil {
				m.UDPDrops.Inc()
			}
		}
		return
	}
	// The request then traverses the destination's emulated link. A
	// blocked outcome — dropped, or delivered past the dialer's
	// patience — swallows the whole exchange before the handler runs:
	// delivery is synchronous on the logical clock, so a datagram that
	// cannot beat the deadline must never generate server-side effects.
	req := n.traverseUDP('q', src.Addr(), dst.Addr(), dst.Port(), payload, n.cfg.DialTimeout)
	if req.Hit && req.Blocked() {
		return
	}

	n.mu.RLock()
	if bound, ok := n.udpBinds[dst]; ok {
		n.mu.RUnlock()
		bound.enqueue(src, payload)
		return
	}
	host, ok := n.hostAtLocked(dst.Addr())
	n.mu.RUnlock()
	if !ok {
		return
	}
	handler, open := host.UDP[dst.Port()]
	if !open {
		return
	}
	for _, resp := range handler(src, payload) {
		if drop, byFault := n.dropDatagram('r', dst.Addr(), src.Addr(), dst.Port(), resp, eff.loss, now); drop {
			if byFault {
				if m := n.faultMetrics(); m != nil {
					m.UDPDrops.Inc()
				}
			}
			continue
		}
		// Responses traverse the client's link with whatever patience
		// the request's sojourn left of the round-trip budget.
		if out := n.traverseUDP('r', dst.Addr(), src.Addr(), dst.Port(), resp, n.cfg.DialTimeout-req.Sojourn); out.Hit && out.Blocked() {
			continue
		}
		if eff.garble {
			resp = garbleUDP(resp)
			if m := n.faultMetrics(); m != nil {
				m.Garbles.Inc()
			}
		}
		n.mu.RLock()
		back, ok := n.udpBinds[src]
		n.mu.RUnlock()
		if ok {
			back.enqueue(dst, resp)
		}
	}
}

// ListenUDP binds a client-side UDP socket at local. Port 0 picks a free
// ephemeral port deterministically derived from the address.
func (n *Network) ListenUDP(local netip.AddrPort) (*UDPConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if local.Port() == 0 {
		for p := uint16(33000); ; p++ {
			cand := netip.AddrPortFrom(local.Addr(), p)
			if _, taken := n.udpBinds[cand]; !taken {
				local = cand
				break
			}
			if p == 65535 {
				return nil, fmt.Errorf("netsim: no free ports on %v", local.Addr())
			}
		}
	}
	if _, taken := n.udpBinds[local]; taken {
		return nil, ErrPortInUse
	}
	c := newUDPConn(n, local)
	n.udpBinds[local] = c
	return c, nil
}

func (n *Network) closeUDP(local netip.AddrPort) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.udpBinds, local)
}
