package netsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }
func addr(s string) netip.Addr   { return netip.MustParseAddr(s) }

func TestConnPairRoundTrip(t *testing.T) {
	a, b := NewConnPair(ap("[2001:db8::1]:1000"), ap("[2001:db8::2]:80"))
	defer a.Close()
	defer b.Close()
	msg := []byte("hello fabric")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := b.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	// Reverse direction.
	if _, err := b.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	n, err = a.Read(buf)
	if err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("reverse Read = %q, %v", buf[:n], err)
	}
}

func TestConnAddrs(t *testing.T) {
	a, b := NewConnPair(ap("[2001:db8::1]:1000"), ap("[2001:db8::2]:80"))
	defer a.Close()
	defer b.Close()
	la := a.LocalAddr().(*net.TCPAddr)
	if la.Port != 1000 {
		t.Fatalf("local = %v", la)
	}
	rb := b.RemoteAddr().(*net.TCPAddr)
	if rb.Port != 1000 {
		t.Fatalf("b remote = %v", rb)
	}
}

func TestConnEOFAfterPeerClose(t *testing.T) {
	a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	a.Write([]byte("tail"))
	a.Close()
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain = %q %v", buf[:n], err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestConnReadAfterOwnClose(t *testing.T) {
	a, _ := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	a.Close()
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestConnCloseUnblocksPeerRead(t *testing.T) {
	a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("got %v, want EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("peer read not unblocked")
	}
}

func TestConnReadDeadline(t *testing.T) {
	a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := b.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline far overshot")
	}
	// Clearing the deadline makes reads work again.
	b.SetReadDeadline(time.Time{})
	a.Write([]byte("x"))
	if _, err := b.Read(make([]byte, 1)); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestConnPastDeadlineImmediate(t *testing.T) {
	a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
	b.SetWriteDeadline(time.Now().Add(-time.Second))
	if _, err := b.Write([]byte("x")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("write got %v", err)
	}
}

func TestConnBothSidesWriteFirst(t *testing.T) {
	// Buffered pipe must not deadlock when both ends write before
	// reading (the reason net.Pipe is unsuitable).
	a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	payload := bytes.Repeat([]byte("x"), 1<<16)
	for _, c := range []*Conn{a, b} {
		wg.Add(1)
		go func(c *Conn) {
			defer wg.Done()
			if _, err := c.Write(payload); err != nil {
				t.Errorf("write: %v", err)
			}
		}(c)
	}
	wg.Wait()
	for _, c := range []*Conn{a, b} {
		got, err := io.ReadAll(io.LimitReader(c, int64(len(payload))))
		if err != nil || len(got) != len(payload) {
			t.Fatalf("read %d bytes, err %v", len(got), err)
		}
	}
}

func TestConnCloseWriteHalfClose(t *testing.T) {
	a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
	defer a.Close()
	defer b.Close()
	a.Write([]byte("req"))
	a.CloseWrite()
	got, err := io.ReadAll(b)
	if err != nil || string(got) != "req" {
		t.Fatalf("ReadAll = %q %v", got, err)
	}
	// b can still respond.
	if _, err := b.Write([]byte("resp")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := a.Read(buf)
	if err != nil || string(buf[:n]) != "resp" {
		t.Fatalf("resp = %q %v", buf[:n], err)
	}
}

func TestManualClock(t *testing.T) {
	t0 := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	c := NewManualClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("start time wrong")
	}
	c.Advance(time.Hour)
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Fatal("advance wrong")
	}
	c.Set(t0.Add(2 * time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set should panic")
		}
	}()
	c.Set(t0)
}

func TestManualClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance should panic")
		}
	}()
	NewManualClock(time.Unix(0, 0)).Advance(-time.Second)
}

func TestDialOpenPort(t *testing.T) {
	n := New(Config{})
	h := NewHost("web").HandleTCP(80, func(c net.Conn) {
		defer c.Close()
		buf := make([]byte, 4)
		io.ReadFull(c, buf)
		c.Write(append([]byte("got:"), buf...))
	})
	n.Register(addr("2001:db8::80"), h)

	conn, err := n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8::80]:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("ping"))
	got, err := io.ReadAll(conn)
	if err != nil || string(got) != "got:ping" {
		t.Fatalf("resp = %q %v", got, err)
	}
}

func TestDialClosedPortRefused(t *testing.T) {
	n := New(Config{})
	n.Register(addr("2001:db8::5"), NewHost("server")) // no ports
	_, err := n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8::5]:22"))
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("got %v", err)
	}
}

func TestDialFilteredTimesOut(t *testing.T) {
	n := New(Config{DialTimeout: 30 * time.Millisecond})
	h := NewHost("cpe")
	h.Filtered = true
	n.Register(addr("2001:db8::6"), h)
	start := time.Now()
	_, err := n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8::6]:22"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("filtered dial returned too fast")
	}
}

func TestDialUnroutedRespectsContext(t *testing.T) {
	n := New(Config{DialTimeout: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.DialTCP(ctx, addr("2001:db8::1"), ap("[2001:db8:dead::1]:80"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("context not honoured")
	}
}

func TestUnregisterBlackholes(t *testing.T) {
	n := New(Config{DialTimeout: 20 * time.Millisecond})
	a := addr("2001:db8::7")
	n.Register(a, NewHost("x"))
	n.Unregister(a)
	if _, ok := n.HostAt(a); ok {
		t.Fatal("host still bound")
	}
	_, err := n.DialTCP(context.Background(), addr("2001:db8::1"), netip.AddrPortFrom(a, 80))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
}

func TestUDPHandlerRoundTrip(t *testing.T) {
	n := New(Config{})
	h := NewHost("ntp").HandleUDP(123, func(from netip.AddrPort, p []byte) [][]byte {
		return [][]byte{append([]byte("pong:"), p...)}
	})
	n.Register(addr("2001:db8::123"), h)

	c, err := n.ListenUDP(ap("[2001:db8::1]:5000"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WriteTo([]byte("abc"), ap("[2001:db8::123]:123"))
	buf := make([]byte, 64)
	c.SetReadDeadline(time.Now().Add(time.Second))
	nr, from, err := c.ReadFrom(buf)
	if err != nil || string(buf[:nr]) != "pong:abc" {
		t.Fatalf("resp = %q %v", buf[:nr], err)
	}
	if from != ap("[2001:db8::123]:123") {
		t.Fatalf("from = %v", from)
	}
}

func TestUDPConnToConn(t *testing.T) {
	n := New(Config{})
	a, _ := n.ListenUDP(ap("[2001:db8::1]:1000"))
	b, _ := n.ListenUDP(ap("[2001:db8::2]:2000"))
	defer a.Close()
	defer b.Close()
	a.WriteTo([]byte("direct"), b.LocalAddr())
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(time.Second))
	nr, from, err := b.ReadFrom(buf)
	if err != nil || string(buf[:nr]) != "direct" || from != a.LocalAddr() {
		t.Fatalf("got %q from %v, %v", buf[:nr], from, err)
	}
}

func TestUDPClosedPortSilent(t *testing.T) {
	n := New(Config{})
	n.Register(addr("2001:db8::9"), NewHost("quiet"))
	c, _ := n.ListenUDP(ap("[2001:db8::1]:1000"))
	defer c.Close()
	c.WriteTo([]byte("x"), ap("[2001:db8::9]:5683"))
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := c.ReadFrom(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
}

func TestUDPPortInUseAndEphemeral(t *testing.T) {
	n := New(Config{})
	a, err := n.ListenUDP(ap("[2001:db8::1]:1000"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := n.ListenUDP(ap("[2001:db8::1]:1000")); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("got %v", err)
	}
	e1, err := n.ListenUDP(netip.AddrPortFrom(addr("2001:db8::1"), 0))
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e2, err := n.ListenUDP(netip.AddrPortFrom(addr("2001:db8::1"), 0))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e1.LocalAddr() == e2.LocalAddr() {
		t.Fatal("ephemeral ports collided")
	}
}

func TestUDPRebindAfterClose(t *testing.T) {
	n := New(Config{})
	a, _ := n.ListenUDP(ap("[2001:db8::1]:777"))
	a.Close()
	if _, err := n.ListenUDP(ap("[2001:db8::1]:777")); err != nil {
		t.Fatalf("rebind failed: %v", err)
	}
}

func TestUDPTruncation(t *testing.T) {
	n := New(Config{})
	a, _ := n.ListenUDP(ap("[2001:db8::1]:1"))
	b, _ := n.ListenUDP(ap("[2001:db8::2]:2"))
	defer a.Close()
	defer b.Close()
	a.WriteTo([]byte("0123456789"), b.LocalAddr())
	buf := make([]byte, 4)
	b.SetReadDeadline(time.Now().Add(time.Second))
	nr, _, err := b.ReadFrom(buf)
	if err != nil || nr != 4 || string(buf) != "0123" {
		t.Fatalf("truncated read = %q %v", buf[:nr], err)
	}
}

func TestUDPWriteAfterClose(t *testing.T) {
	n := New(Config{})
	a, _ := n.ListenUDP(ap("[2001:db8::1]:1"))
	a.Close()
	if _, err := a.WriteTo([]byte("x"), ap("[2001:db8::2]:2")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := a.ReadFrom(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read got %v", err)
	}
}

func TestSnifferSeesTrafficInPrefix(t *testing.T) {
	clock := NewManualClock(time.Unix(1000, 0))
	n := New(Config{Clock: clock, DialTimeout: time.Millisecond})
	var mu sync.Mutex
	var seen []PacketInfo
	cancel := n.Sniff(netip.MustParsePrefix("2001:db8:f::/48"), func(pi PacketInfo) {
		mu.Lock()
		seen = append(seen, pi)
		mu.Unlock()
	})

	// TCP attempt into the prefix (no host: blackhole, but sniffed).
	n.DialTCP(context.Background(), addr("2001:db8::1"), ap("[2001:db8:f::42]:443"))
	// UDP into the prefix.
	n.SendUDP(ap("[2001:db8::1]:999"), ap("[2001:db8:f::42]:123"), []byte("q"))
	// Traffic outside the prefix must not be captured.
	n.SendUDP(ap("[2001:db8::1]:999"), ap("[2001:db8:aaaa::1]:123"), []byte("q"))

	mu.Lock()
	got := len(seen)
	mu.Unlock()
	if got != 2 {
		t.Fatalf("sniffed %d packets, want 2", got)
	}
	if seen[0].Proto != "tcp" || seen[0].Dst.Port() != 443 {
		t.Fatalf("first = %+v", seen[0])
	}
	if seen[1].Proto != "udp" || string(seen[1].Payload) != "q" {
		t.Fatalf("second = %+v", seen[1])
	}
	if !seen[0].Time.Equal(clock.Now()) {
		t.Fatal("sniffer timestamps should come from the fabric clock")
	}

	cancel()
	n.SendUDP(ap("[2001:db8::1]:999"), ap("[2001:db8:f::42]:123"), []byte("q"))
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatal("cancelled sniffer still firing")
	}
}

func TestLossDropsPackets(t *testing.T) {
	n := New(Config{LossProb: 1, Seed: 1})
	h := NewHost("ntp").HandleUDP(123, func(netip.AddrPort, []byte) [][]byte {
		return [][]byte{[]byte("r")}
	})
	n.Register(addr("2001:db8::9"), h)
	c, _ := n.ListenUDP(ap("[2001:db8::1]:1"))
	defer c.Close()
	c.WriteTo([]byte("x"), ap("[2001:db8::9]:123"))
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, _, err := c.ReadFrom(make([]byte, 4)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("full loss still delivered: %v", err)
	}
}

func TestStatsCount(t *testing.T) {
	n := New(Config{DialTimeout: time.Millisecond})
	ctx := context.Background()
	n.DialTCP(ctx, addr("::1"), ap("[2001:db8::1]:80"))
	n.SendUDP(ap("[::1]:1"), ap("[2001:db8::1]:123"), nil)
	n.SendUDP(ap("[::1]:1"), ap("[2001:db8::1]:123"), nil)
	dials, pkts := n.Stats()
	if dials != 1 || pkts != 2 {
		t.Fatalf("stats = %d %d", dials, pkts)
	}
}

func TestEphemeralPortStable(t *testing.T) {
	s, d := addr("2001:db8::1"), ap("[2001:db8::2]:80")
	if ephemeralPort(s, d) != ephemeralPort(s, d) {
		t.Fatal("ephemeral port not stable per flow")
	}
	if p := ephemeralPort(s, d); p < 32768 {
		t.Fatalf("port %d below ephemeral range", p)
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New(Config{})
	h := NewHost("web").HandleTCP(80, func(c net.Conn) {
		c.Write([]byte("hi"))
		c.Close()
	})
	target := addr("2001:db8::80")
	n.Register(target, h)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := n.DialTCP(context.Background(), addr("2001:db8::1"), netip.AddrPortFrom(target, 80))
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer conn.Close()
			got, _ := io.ReadAll(conn)
			if string(got) != "hi" {
				t.Errorf("dial %d read %q", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkDialEcho(b *testing.B) {
	n := New(Config{})
	h := NewHost("web").HandleTCP(80, func(c net.Conn) {
		buf := make([]byte, 4)
		io.ReadFull(c, buf)
		c.Write(buf)
		c.Close()
	})
	target := addr("2001:db8::80")
	n.Register(target, h)
	src := addr("2001:db8::1")
	dst := netip.AddrPortFrom(target, 80)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := n.DialTCP(ctx, src, dst)
		if err != nil {
			b.Fatal(err)
		}
		conn.Write([]byte("ping"))
		io.ReadAll(conn)
		conn.Close()
	}
}

func TestConnDataIntegrityProperty(t *testing.T) {
	// Arbitrary write chunkings must be read back byte-identical.
	f := func(chunks [][]byte) bool {
		a, b := NewConnPair(ap("[::1]:1"), ap("[::2]:2"))
		defer b.Close()
		var want []byte
		for i, c := range chunks {
			if len(c) > 4096 {
				chunks[i] = c[:4096]
			}
			want = append(want, chunks[i]...)
		}
		go func() {
			defer a.Close()
			for _, c := range chunks {
				if _, err := a.Write(c); err != nil {
					return
				}
			}
		}()
		got, err := io.ReadAll(b)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPOrderingFIFO(t *testing.T) {
	n := New(Config{})
	a, _ := n.ListenUDP(ap("[2001:db8::1]:1"))
	b, _ := n.ListenUDP(ap("[2001:db8::2]:2"))
	defer a.Close()
	defer b.Close()
	for i := 0; i < 50; i++ {
		a.WriteTo([]byte{byte(i)}, b.LocalAddr())
	}
	buf := make([]byte, 4)
	b.SetReadDeadline(time.Now().Add(time.Second))
	for i := 0; i < 50; i++ {
		nr, _, err := b.ReadFrom(buf)
		if err != nil || nr != 1 || buf[0] != byte(i) {
			t.Fatalf("datagram %d: got %v (n=%d, err=%v)", i, buf[0], nr, err)
		}
	}
}

func TestRegisterPrefixAliased(t *testing.T) {
	n := New(Config{DialTimeout: time.Millisecond})
	h := NewHost("cdn").HandleTCP(80, func(c net.Conn) {
		c.Write([]byte("edge"))
		c.Close()
	})
	if err := n.RegisterPrefix(netip.MustParsePrefix("2001:db8:aaaa::/48"), h); err == nil {
		t.Fatal("non-/64 prefix accepted")
	}
	if err := n.RegisterPrefix(netip.MustParsePrefix("2001:db8:aa:bb::/64"), h); err != nil {
		t.Fatal(err)
	}
	// Any address in the block answers.
	for _, s := range []string{"2001:db8:aa:bb::1", "2001:db8:aa:bb:dead:beef:1234:5678"} {
		conn, err := n.DialTCP(context.Background(), addr("2001:db8::9"),
			netip.AddrPortFrom(addr(s), 80))
		if err != nil {
			t.Fatalf("dial %s: %v", s, err)
		}
		got, _ := io.ReadAll(conn)
		conn.Close()
		if string(got) != "edge" {
			t.Fatalf("read %q", got)
		}
	}
	// Outside the block: blackhole.
	if _, err := n.DialTCP(context.Background(), addr("2001:db8::9"),
		ap("[2001:db8:aa:bc::1]:80")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	// Exact bindings take precedence over the prefix.
	exact := NewHost("exact").HandleTCP(80, func(c net.Conn) {
		c.Write([]byte("exact"))
		c.Close()
	})
	n.Register(addr("2001:db8:aa:bb::42"), exact)
	conn, err := n.DialTCP(context.Background(), addr("2001:db8::9"), ap("[2001:db8:aa:bb::42]:80"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(conn)
	conn.Close()
	if string(got) != "exact" {
		t.Fatalf("precedence broken: %q", got)
	}
}
