package netsim

import (
	"testing"
	"time"
)

func TestManualClockChanged(t *testing.T) {
	start := time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	c := NewManualClock(start)

	ch := c.Changed()
	select {
	case <-ch:
		t.Fatal("channel closed before any advance")
	default:
	}

	c.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("Advance did not signal")
	}

	// A fresh channel fires on Set too.
	ch = c.Changed()
	c.Set(start.Add(time.Hour))
	select {
	case <-ch:
	default:
		t.Fatal("Set did not signal")
	}

	// Zero-duration moves leave waiters parked: time did not change.
	ch = c.Changed()
	c.Advance(0)
	c.Set(c.Now())
	select {
	case <-ch:
		t.Fatal("no-op clock moves signalled")
	default:
	}
}

func TestManualClockChangedConcurrent(t *testing.T) {
	c := NewManualClock(time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			ch := c.Changed()
			c.Now()
			<-ch
		}
	}()
	// Keep advancing until the waiter has consumed 100 signals; the
	// grab-before-wait protocol must never strand it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-done:
			return
		default:
			if time.Now().After(deadline) {
				t.Fatal("waiter starved")
			}
			c.Advance(time.Millisecond)
		}
	}
}
