// Fabric-side glue for the deterministic link-layer emulation
// (internal/netsim/link). The installed FaultPlan may carry a
// link.Plan; every TCP dial and UDP exchange then traverses the link
// resolved for its destination, with the queueing delay stamped on the
// logical clock and outcomes booked on the link metrics. Flow identity
// hashing mirrors the fault engine's rules: server-side addresses,
// ports, payloads and the dial attempt participate; client ephemeral
// ports never do (bind order under concurrency is not deterministic).
package netsim

import (
	"net/netip"
	"time"

	"ntpscan/internal/netsim/link"
)

// linkSliceOf reads the pinned churn slice. The campaign driver pins it
// at each slice boundary via NoteLinkSlice; every traversal between two
// boundaries uses the pinned value, so intra-slice clock nudges (the
// cluster's heartbeat schedule advances the logical clock mid-slice)
// can never shift a flow onto a different queue draw.
func (n *Network) linkSliceOf() int {
	return int(n.linkSlice.Load())
}

// Modelled packet sizes for link serialization delay: a TCP handshake
// segment, and an NTP request/response datagram with v6+UDP framing.
const (
	linkSynBytes    = 80
	linkNTPBytes    = 96
	linkUDPOverhead = 48
)

// SetLinkMetrics attaches the link-traversal accounting surface.
// Outcomes are booked only while a plan with links is installed.
func (n *Network) SetLinkMetrics(m *link.Metrics) {
	n.lm.Store(m)
}

func (n *Network) linkMetrics() *link.Metrics {
	return n.lm.Load()
}

// links returns the installed link plan, if any.
func (n *Network) links() *link.Plan {
	if plan := n.plan(); plan != nil {
		return plan.Links
	}
	return nil
}

// traverseTCP runs a dial's SYN through the destination's link. The
// flow hashes the endpoints, the server port and the dial attempt —
// retries of a timed-out dial are distinct packets that may find a
// different queue. Temporal variation comes from the link plan's slice
// grid inside Traverse, never from the raw instant: the exact
// nanosecond an exchange runs at can differ between single-process and
// cluster modes, and byte-identity across them is part of the
// contract.
func (n *Network) traverseTCP(src netip.Addr, dst netip.AddrPort, attempt int) link.Outcome {
	lp := n.links()
	if lp == nil {
		return link.Outcome{}
	}
	flow := newFlowHash(lp.Seed, 'T').
		addr(src).addr(dst.Addr()).
		word(uint64(dst.Port())).
		word(uint64(attempt)).
		uint64()
	out := lp.Traverse(dst.Addr(), flow, linkSynBytes, n.linkSliceOf(), n.cfg.DialTimeout)
	n.linkMetrics().Account(out)
	return out
}

// traverseUDP runs one datagram through the link resolved for its
// receiver. dir separates the request ('q') and response ('r')
// directions, exactly like dropDatagram.
func (n *Network) traverseUDP(dir byte, from, to netip.Addr, serverPort uint16, payload []byte, patience time.Duration) link.Outcome {
	lp := n.links()
	if lp == nil {
		return link.Outcome{}
	}
	flow := newFlowHash(lp.Seed, dir).
		addr(from).addr(to).
		word(uint64(serverPort)).
		bytes(payload).
		uint64()
	out := lp.Traverse(to, flow, linkUDPOverhead+len(payload), n.linkSliceOf(), patience)
	n.linkMetrics().Account(out)
	return out
}

// LinkAdmit models the full NTP request/response round trip for the
// codec fast path, which bypasses SendUDP entirely: the request
// traverses the vantage's link, the response traverses the client's,
// and the response's patience is whatever the request's sojourn left
// of the dialer's budget. Reports whether the exchange survives. The
// flow hash deliberately excludes the payload — captureVia and
// volumeBatch must admit identically for the same (client, vantage,
// port, slice) regardless of which codec buffer they encode into.
func (n *Network) LinkAdmit(client, vantage netip.Addr, serverPort uint16) bool {
	lp := n.links()
	if lp == nil {
		return true
	}
	m := n.linkMetrics()
	s := n.linkSliceOf()
	reqFlow := newFlowHash(lp.Seed, 'q').
		addr(client).addr(vantage).
		word(uint64(serverPort)).
		uint64()
	req := lp.Traverse(vantage, reqFlow, linkNTPBytes, s, n.cfg.DialTimeout)
	m.Account(req)
	if req.Hit && req.Blocked() {
		return false
	}
	patience := n.cfg.DialTimeout - req.Sojourn
	respFlow := newFlowHash(lp.Seed, 'r').
		addr(vantage).addr(client).
		word(uint64(serverPort)).
		uint64()
	resp := lp.Traverse(client, respFlow, linkNTPBytes, s, patience)
	m.Account(resp)
	return !(resp.Hit && resp.Blocked())
}

// NoteLinkSlice pins the link layer's churn slice to the one containing
// the instant and books the schedule's per-slice accounting: events
// applying at that slice, and the gauge of currently-withdrawn
// prefixes. The campaign driver calls it once per collection slice at
// the frozen boundary clock, so both the pinned slice and the numbers
// are independent of worker count and intra-slice clock nudges.
func (n *Network) NoteLinkSlice(at time.Time) {
	lp := n.links()
	if lp == nil {
		return
	}
	s := lp.SliceOf(at)
	n.linkSlice.Store(int64(s))
	m := n.linkMetrics()
	if m == nil {
		return
	}
	if ev := lp.EventsAt(s); ev > 0 {
		m.ChurnEvents.Add(int64(ev))
	}
	m.Withdrawn.Set(int64(lp.WithdrawnAt(s)))
}
