// Deterministic fault injection. A FaultPlan is a schedule of
// logical-clock-windowed network pathologies — host outages, bursty
// per-prefix loss, slow links, garbled responses — installed on the
// fabric before (or during) a run. Every stochastic decision the plan
// makes is a pure hash of (plan seed, flow identity, logical time,
// dial attempt), never a draw from a shared stream: goroutine
// interleaving cannot change which packets die, so a faulted campaign
// is exactly as replayable as a clean one.
package netsim

import (
	"context"
	"io"
	"net"
	"net/netip"
	"time"

	"ntpscan/internal/netsim/link"
)

// FaultKind selects the pathology a Fault injects.
type FaultKind uint8

const (
	// FaultOutage takes the scoped hosts fully offline for the window:
	// TCP dials blackhole, UDP vanishes in both directions. Models
	// reboots, link failures, and vantage-server blackouts.
	FaultOutage FaultKind = iota
	// FaultLoss drops each packet to or from the scope with probability
	// Prob for the window — the bursty, prefix-correlated loss real
	// IPv6 paths exhibit, as opposed to Config.LossProb's uniform rain.
	FaultLoss
	// FaultSlow adds Latency to the path. When the injected latency
	// exceeds the dialer's patience (Config.DialTimeout) the connection
	// attempt times out; otherwise it only shifts timestamps.
	FaultSlow
	// FaultGarble corrupts responses from the scoped hosts: TCP streams
	// are truncated mid-banner with a flipped trailing byte, UDP
	// responses are clipped and corrupted. Requests go through intact —
	// the host is up but broken.
	FaultGarble
)

// String names the kind for logs and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultOutage:
		return "outage"
	case FaultLoss:
		return "loss"
	case FaultSlow:
		return "slow"
	case FaultGarble:
		return "garble"
	}
	return "unknown"
}

// Fault is one scheduled event. Scope is either a single address
// (Addr valid) or every address under Prefix (Prefix valid); the
// window is [From, Until) on the fabric's logical clock.
type Fault struct {
	Kind FaultKind  `json:"kind"`
	Addr netip.Addr `json:"addr,omitempty"`
	// Prefix scopes the fault to a routing aggregate (e.g. a /48 going
	// dark). Ignored when Addr is valid.
	Prefix  netip.Prefix  `json:"prefix,omitempty"`
	From    time.Time     `json:"from"`
	Until   time.Time     `json:"until"`
	Prob    float64       `json:"prob,omitempty"`    // FaultLoss drop probability
	Latency time.Duration `json:"latency,omitempty"` // FaultSlow injected delay
}

func (f *Fault) activeAt(at time.Time) bool {
	return !at.Before(f.From) && at.Before(f.Until)
}

// NodeFaultKind selects the control-plane pathology a NodeFault
// injects. Node faults scope to campaign-cluster nodes (by node index)
// rather than fabric addresses: the cluster coordinator queries the
// plan at each slice boundary, so node loss is as windowed,
// deterministic and replayable as packet loss.
type NodeFaultKind uint8

const (
	// NodeCrash kills the node for the window: it stops executing and
	// stops heartbeating. A crash window opening strictly inside a
	// slice models death-after-claim — the node's dispatched tasks are
	// lost and re-dispatched within the slice. When the window closes
	// the node rejoins and is re-leased from the coordinator's state.
	NodeCrash NodeFaultKind = iota
	// NodePartition isolates the node's control channel: heartbeats are
	// lost, but the node keeps executing whatever leases it still
	// believes valid — the zombie scenario. Its submissions carry the
	// fenced epoch and are rejected; after its lease TTL passes it
	// self-fences and idles until the window closes.
	NodePartition
	// NodeSlowHeartbeat delays the node's heartbeats by Delay. A delay
	// beyond the coordinator's grace reads as a miss: leases expire and
	// the node flaps without ever being down.
	NodeSlowHeartbeat
)

// String names the kind for logs and test output.
func (k NodeFaultKind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case NodePartition:
		return "node-partition"
	case NodeSlowHeartbeat:
		return "node-slow-heartbeat"
	}
	return "unknown"
}

// NodeFault is one scheduled node-level event; the window is
// [From, Until) on the logical clock, like Fault's.
type NodeFault struct {
	Kind  NodeFaultKind `json:"kind"`
	Node  int           `json:"node"`
	From  time.Time     `json:"from"`
	Until time.Time     `json:"until"`
	Delay time.Duration `json:"delay,omitempty"` // NodeSlowHeartbeat added latency
}

func (f *NodeFault) activeAt(at time.Time) bool {
	return !at.Before(f.From) && at.Before(f.Until)
}

// FaultPlan is an immutable schedule of faults plus the seed that
// drives their stochastic decisions. Build one with Add, then install
// it with Network.InstallFaults; do not mutate a plan after
// installation.
type FaultPlan struct {
	Seed   uint64  `json:"seed"`
	Faults []Fault `json:"faults"`
	// Nodes holds the plan's node-level faults. The fabric ignores them
	// entirely — they gate nothing on the packet path — so a plan with
	// only node faults leaves a single-process campaign untouched.
	Nodes []NodeFault `json:"nodes,omitempty"`
	// Links, when set, routes every flow through the deterministic
	// link-layer emulation (queues, bandwidth, propagation delay, route
	// churn — see internal/netsim/link). Links compose with the fault
	// vocabulary above: faults decide first whether a packet exists at
	// all, links decide how long it queues and whether it survives the
	// queue.
	Links *link.Plan `json:"links,omitempty"`

	// Indexes, built by InstallFaults: exact-address faults by address,
	// prefix faults as a linear list (plans hold few prefixes).
	byAddr   map[netip.Addr][]int
	byPrefix []int
}

// Add appends a fault to the plan.
func (p *FaultPlan) Add(f Fault) {
	p.Faults = append(p.Faults, f)
}

// AddNode appends a node-level fault to the plan.
func (p *FaultPlan) AddNode(f NodeFault) {
	p.Nodes = append(p.Nodes, f)
}

// NodeDown reports whether a crash window covers the node at the
// instant.
func (p *FaultPlan) NodeDown(node int, at time.Time) bool {
	if p == nil {
		return false
	}
	for i := range p.Nodes {
		f := &p.Nodes[i]
		if f.Kind == NodeCrash && f.Node == node && f.activeAt(at) {
			return true
		}
	}
	return false
}

// NodePartitioned reports whether a partition window covers the node
// at the instant.
func (p *FaultPlan) NodePartitioned(node int, at time.Time) bool {
	if p == nil {
		return false
	}
	for i := range p.Nodes {
		f := &p.Nodes[i]
		if f.Kind == NodePartition && f.Node == node && f.activeAt(at) {
			return true
		}
	}
	return false
}

// HeartbeatDelay returns the largest slow-heartbeat delay covering the
// node at the instant (zero when none).
func (p *FaultPlan) HeartbeatDelay(node int, at time.Time) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for i := range p.Nodes {
		f := &p.Nodes[i]
		if f.Kind == NodeSlowHeartbeat && f.Node == node && f.activeAt(at) && f.Delay > d {
			d = f.Delay
		}
	}
	return d
}

// NodeDiesWithin reports whether a crash window *opens* strictly
// inside (from, until] — the node looked alive at the slice's
// heartbeat instant but dies before its dispatched work completes.
// The cluster counts such tasks as lost and re-dispatches them.
func (p *FaultPlan) NodeDiesWithin(node int, from, until time.Time) bool {
	if p == nil {
		return false
	}
	for i := range p.Nodes {
		f := &p.Nodes[i]
		if f.Kind == NodeCrash && f.Node == node && f.From.After(from) && !f.From.After(until) {
			return true
		}
	}
	return false
}

// build prepares the lookup indexes.
func (p *FaultPlan) build() {
	if p.Links != nil {
		p.Links.Build()
	}
	p.byAddr = make(map[netip.Addr][]int)
	p.byPrefix = p.byPrefix[:0]
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Addr.IsValid() {
			p.byAddr[f.Addr] = append(p.byAddr[f.Addr], i)
		} else if f.Prefix.IsValid() {
			p.byPrefix = append(p.byPrefix, i)
		}
	}
}

// faultEffects is the combined active pathology on a path at an
// instant.
type faultEffects struct {
	down    bool
	loss    float64 // max active burst-loss probability
	latency time.Duration
	garble  bool
}

func (e faultEffects) any() bool {
	return e.down || e.loss > 0 || e.latency > 0 || e.garble
}

// effectsOn folds every fault scoped to addr and active at the given
// time.
func (p *FaultPlan) effectsOn(addr netip.Addr, at time.Time) faultEffects {
	var e faultEffects
	for _, i := range p.byAddr[addr] {
		p.apply(&e, &p.Faults[i], at)
	}
	for _, i := range p.byPrefix {
		f := &p.Faults[i]
		if f.Prefix.Contains(addr) {
			p.apply(&e, f, at)
		}
	}
	return e
}

func (p *FaultPlan) apply(e *faultEffects, f *Fault, at time.Time) {
	if !f.activeAt(at) {
		return
	}
	switch f.Kind {
	case FaultOutage:
		e.down = true
	case FaultLoss:
		if f.Prob > e.loss {
			e.loss = f.Prob
		}
	case FaultSlow:
		if f.Latency > e.latency {
			e.latency = f.Latency
		}
	case FaultGarble:
		e.garble = true
	}
}

// InstallFaults atomically installs plan on the fabric (nil removes
// all faults). The plan's indexes are built here; the plan must not be
// mutated afterwards.
func (n *Network) InstallFaults(plan *FaultPlan) {
	if plan != nil {
		plan.build()
	}
	n.faults.Store(&faultBox{plan: plan})
}

// faultBox wraps the plan pointer so a nil plan can be stored
// atomically.
type faultBox struct{ plan *FaultPlan }

func (n *Network) plan() *FaultPlan {
	if b := n.faults.Load(); b != nil {
		return b.plan
	}
	return nil
}

// HostUp reports whether addr is free of an active outage fault at the
// given time. It says nothing about whether a host is registered there
// — it answers "is this address blacked out by the plan".
func (n *Network) HostUp(addr netip.Addr, at time.Time) bool {
	p := n.plan()
	if p == nil {
		return true
	}
	return !p.effectsOn(addr, at).down
}

// attemptKey carries the dialer's retry attempt number through context
// so a retried probe re-rolls its fault hashes (a fresh SYN takes a
// fresh path through the loss process).
type attemptKey struct{}

// WithAttempt tags ctx with a retry attempt number (0 = first try).
func WithAttempt(ctx context.Context, attempt int) context.Context {
	if attempt == 0 {
		return ctx
	}
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFrom extracts the attempt number tagged by WithAttempt.
func AttemptFrom(ctx context.Context) int {
	if v, ok := ctx.Value(attemptKey{}).(int); ok {
		return v
	}
	return 0
}

// --- hash-based stochastic decisions -------------------------------
//
// Loss and garble decisions must not consume from a shared rng stream:
// the draw order would depend on goroutine scheduling and the fabric
// would stop being worker-count-independent. Instead each decision is
// a pure FNV-style hash of the packet's identity. UDP source ports are
// deliberately excluded — ephemeral bind order under concurrency is
// not deterministic — so flow identity rests on addresses, the
// destination port, the payload, logical time, and the dial attempt.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type flowHash uint64

func newFlowHash(seed uint64, tag byte) flowHash {
	h := flowHash(fnvOffset)
	h = h.word(seed)
	h = h.byte(tag)
	return h
}

func (h flowHash) byte(b byte) flowHash {
	return (h ^ flowHash(b)) * fnvPrime
}

func (h flowHash) word(v uint64) flowHash {
	for i := 0; i < 8; i++ {
		h = h.byte(byte(v >> (8 * i)))
	}
	return h
}

func (h flowHash) addr(a netip.Addr) flowHash {
	b := a.As16()
	for _, x := range b {
		h = h.byte(x)
	}
	return h
}

func (h flowHash) bytes(p []byte) flowHash {
	for _, x := range p {
		h = h.byte(x)
	}
	return h
}

// roll finalises the hash (splitmix64 mixer, so consecutive inputs
// decorrelate) and compares the top 53 bits against prob.
func (h flowHash) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	z := uint64(h)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < prob
}

// uint64 finalises the hash into a well-mixed word.
func (h flowHash) uint64() uint64 {
	z := uint64(h)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// dropTCP decides whether a SYN dies under burst loss.
func dropTCP(seed uint64, src netip.Addr, dst netip.AddrPort, at time.Time, attempt int, prob float64) bool {
	h := newFlowHash(seed, 't')
	h = h.addr(src).addr(dst.Addr()).word(uint64(dst.Port()))
	h = h.word(uint64(at.UnixNano()))
	h = h.word(uint64(attempt))
	return h.roll(prob)
}

// dropUDP decides whether a datagram dies (burst loss or the fabric's
// uniform LossProb). dir distinguishes request from response so the
// two directions roll independently.
func dropUDP(seed uint64, dir byte, src, dst netip.Addr, dstPort uint16, payload []byte, at time.Time, prob float64) bool {
	h := newFlowHash(seed, dir)
	h = h.addr(src).addr(dst).word(uint64(dstPort))
	h = h.bytes(payload)
	h = h.word(uint64(at.UnixNano()))
	return h.roll(prob)
}

// --- garbling -------------------------------------------------------

// garbleCut derives where a garbled stream is truncated: enough bytes
// to look like a banner started, never enough to finish one.
func garbleCut(seed uint64, dst netip.AddrPort, at time.Time, attempt int) int {
	h := newFlowHash(seed, 'g')
	h = h.addr(dst.Addr()).word(uint64(dst.Port()))
	h = h.word(uint64(at.UnixNano()))
	h = h.word(uint64(attempt))
	return 5 + int(h.uint64()%56) // 5..60 bytes
}

// garbledConn truncates what the peer sends after cut bytes, flipping
// the final delivered byte — a banner that starts plausibly and dies
// mid-line. Writes pass through untouched.
type garbledConn struct {
	net.Conn
	remain int
}

func (g *garbledConn) Read(p []byte) (int, error) {
	if g.remain <= 0 {
		return 0, io.EOF
	}
	if len(p) > g.remain {
		p = p[:g.remain]
	}
	n, err := g.Conn.Read(p)
	g.remain -= n
	if n > 0 && g.remain == 0 {
		p[n-1] ^= 0x3f
	}
	return n, err
}

// garbleUDP corrupts a response datagram: clipped to half length (at
// least one byte) with the final byte flipped.
func garbleUDP(payload []byte) []byte {
	n := len(payload) / 2
	if n < 1 {
		n = len(payload)
	}
	if n == 0 {
		return payload
	}
	out := make([]byte, n)
	copy(out, payload[:n])
	out[n-1] ^= 0x3f
	return out
}
