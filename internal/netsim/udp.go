package netsim

import (
	"net"
	"net/netip"
	"os"
	"sync"
	"time"
)

// UDPConn is a bound simulated UDP socket. It implements the subset of
// net.PacketConn the scanners use (ReadFrom/WriteTo with deadlines).
type UDPConn struct {
	net   *Network
	local netip.AddrPort

	mu     sync.Mutex
	queue  []datagram
	closed bool
	notify chan struct{}
	readDL pipeDeadline
	// dlArmed replaces the wall timer under a manual clock: a deadlined
	// read on an empty queue fails immediately there (delivery is
	// synchronous), so arming a real timer per SetReadDeadline — one
	// allocation per CoAP probe — would only feed the garbage collector.
	dlArmed bool
}

type datagram struct {
	from    netip.AddrPort
	payload []byte
}

func newUDPConn(n *Network, local netip.AddrPort) *UDPConn {
	return &UDPConn{
		net:    n,
		local:  local,
		notify: make(chan struct{}, 1),
	}
}

// enqueue delivers an inbound datagram. The payload is copied so senders
// may reuse their buffers.
func (c *UDPConn) enqueue(from netip.AddrPort, payload []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	c.queue = append(c.queue, datagram{from: from, payload: cp})
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// LocalAddr returns the bound address.
func (c *UDPConn) LocalAddr() netip.AddrPort { return c.local }

// WriteTo sends one datagram to dst.
func (c *UDPConn) WriteTo(payload []byte, dst netip.AddrPort) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	c.net.SendUDP(c.local, dst, payload)
	return len(payload), nil
}

// ReadFrom blocks for the next inbound datagram, honouring the read
// deadline. The datagram is copied into p; if p is too small the excess
// is discarded (UDP truncation semantics).
func (c *UDPConn) ReadFrom(p []byte) (int, netip.AddrPort, error) {
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			d := c.queue[0]
			c.queue = c.queue[1:]
			c.mu.Unlock()
			return copy(p, d.payload), d.from, nil
		}
		closed, dlArmed := c.closed, c.dlArmed
		c.mu.Unlock()
		if closed {
			return 0, netip.AddrPort{}, net.ErrClosed
		}
		// On a manual clock a deadlined read on an empty queue has
		// already missed its answer: datagram delivery is synchronous
		// (SendUDP enqueues any response before returning), so nothing
		// can arrive while we wait and the wall-clock deadline would
		// only stall the simulation.
		if dlArmed {
			return 0, netip.AddrPort{}, os.ErrDeadlineExceeded
		}
		if isClosedChan(c.readDL.wait()) {
			return 0, netip.AddrPort{}, os.ErrDeadlineExceeded
		}
		select {
		case <-c.notify:
		case <-c.readDL.wait():
			return 0, netip.AddrPort{}, os.ErrDeadlineExceeded
		}
	}
}

// SetReadDeadline bounds future ReadFrom calls.
func (c *UDPConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	closed := c.closed
	if _, logical := c.net.clock.(*ManualClock); logical && !closed {
		c.dlArmed = !t.IsZero()
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	if closed {
		return net.ErrClosed
	}
	c.readDL.set(t)
	return nil
}

// Pending returns the number of queued inbound datagrams.
func (c *UDPConn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Close unbinds the socket and unblocks readers.
func (c *UDPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.net.closeUDP(c.local)
	select {
	case c.notify <- struct{}{}:
	default:
	}
	return nil
}
