package hitlist

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"ntpscan/internal/world"
)

func testWorld() *world.World {
	return world.New(world.Config{Seed: 1, DeviceScale: 1e-3, AddrScale: 1e-6, ASScale: 0.02})
}

func TestBuildDeterministic(t *testing.T) {
	w := testWorld()
	a := Build(w, Config{Seed: 5})
	w2 := world.New(w.Cfg)
	b := Build(w2, Config{Seed: 5})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Full {
		if a.Full[i] != b.Full[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestBuildComposition(t *testing.T) {
	w := testWorld()
	h := Build(w, Config{Seed: 5})
	if h.Len() == 0 {
		t.Fatal("empty hitlist")
	}
	if h.BySource["dns"] == 0 {
		t.Fatal("no DNS seeds")
	}
	if h.BySource["traceroute"] == 0 {
		t.Fatal("no traceroute seeds")
	}
	if h.BySource["alias"] == 0 {
		t.Fatal("no CDN aliases")
	}
	if h.BySource["stale"] == 0 {
		t.Fatal("no stale mass")
	}
	// Stale entries should dominate device seeds (full >> public).
	if h.BySource["stale"] < h.BySource["dns"] {
		t.Fatalf("stale %d < dns %d", h.BySource["stale"], h.BySource["dns"])
	}
}

func TestBuildSortedUnique(t *testing.T) {
	h := Build(testWorld(), Config{Seed: 5})
	for i := 1; i < len(h.Full); i++ {
		if !h.Full[i-1].Less(h.Full[i]) {
			t.Fatalf("not sorted/unique at %d: %v vs %v", i, h.Full[i-1], h.Full[i])
		}
	}
}

func TestProbeSemantics(t *testing.T) {
	w := testWorld()
	w.RegisterStatic()
	src := netip.MustParseAddr("2001:db8:5ca::1")
	ctx := context.Background()

	// A static hitlist server must probe alive.
	var serverAddr, staleAddr netip.Addr
	h := Build(w, Config{Seed: 5})
	for _, a := range h.Full {
		if _, ok := w.Fabric().HostAt(a); ok {
			serverAddr = a
			break
		}
	}
	for _, a := range h.Full {
		if _, ok := w.Fabric().HostAt(a); !ok {
			staleAddr = a
			break
		}
	}
	if !serverAddr.IsValid() || !staleAddr.IsValid() {
		t.Fatal("could not find probe fixtures")
	}
	if !Probe(ctx, w.Fabric(), src, serverAddr, 100*time.Millisecond) {
		t.Fatalf("live server %v probed dead", serverAddr)
	}
	if Probe(ctx, w.Fabric(), src, staleAddr, 20*time.Millisecond) {
		t.Fatalf("stale %v probed alive", staleAddr)
	}
}

func TestPublicSubset(t *testing.T) {
	w := testWorld()
	w.RegisterStatic()
	h := Build(w, Config{Seed: 5})
	src := netip.MustParseAddr("2001:db8:5ca::1")
	ctx := context.Background()
	pub := h.Public(func(a netip.Addr) bool {
		return Probe(ctx, w.Fabric(), src, a, 10*time.Millisecond)
	}, 64)
	if len(pub) == 0 {
		t.Fatal("empty public list")
	}
	if len(pub) >= h.Len() {
		t.Fatalf("public (%d) not smaller than full (%d)", len(pub), h.Len())
	}
	// Public entries are a subset of full.
	full := map[netip.Addr]bool{}
	for _, a := range h.Full {
		full[a] = true
	}
	for _, a := range pub {
		if !full[a] {
			t.Fatalf("public entry %v not in full list", a)
		}
	}
}

func TestCDNAliasCount(t *testing.T) {
	w := testWorld()
	small := Build(w, Config{Seed: 5, CDNAliases: 2})
	w2 := world.New(w.Cfg)
	big := Build(w2, Config{Seed: 5, CDNAliases: 20})
	if big.BySource["alias"] <= small.BySource["alias"] {
		t.Fatalf("alias scaling broken: %d vs %d",
			big.BySource["alias"], small.BySource["alias"])
	}
}

func TestAliasedPrefixDetection(t *testing.T) {
	w := testWorld()
	h := Build(w, Config{Seed: 5, CDNAliases: 20})
	aliased := h.AliasedPrefixes(8)
	if len(aliased) == 0 {
		t.Fatal("no aliased prefixes detected despite CDN expansion")
	}
	// Every detected prefix really holds >= 8 entries.
	for p := range aliased {
		n := 0
		for _, a := range h.Full {
			if p.Contains(a) {
				n++
			}
		}
		if n < 8 {
			t.Fatalf("prefix %v flagged with only %d entries", p, n)
		}
	}
}

func TestDealiasCaps(t *testing.T) {
	w := testWorld()
	h := Build(w, Config{Seed: 5, CDNAliases: 20})
	out := h.Dealias(h.Full, 8, 2)
	if len(out) >= len(h.Full) {
		t.Fatalf("dealias removed nothing: %d of %d", len(out), len(h.Full))
	}
	aliased := h.AliasedPrefixes(8)
	counts := map[string]int{}
	for _, a := range out {
		p, _ := a.Prefix(64)
		if _, ok := aliased[p]; ok {
			counts[p.String()]++
			if counts[p.String()] > 2 {
				t.Fatalf("aliased prefix %v kept %d entries", p, counts[p.String()])
			}
		}
	}
	// Non-aliased entries survive untouched.
	plain := 0
	for _, a := range h.Full {
		p, _ := a.Prefix(64)
		if _, ok := aliased[p]; !ok {
			plain++
		}
	}
	kept := 0
	for _, a := range out {
		p, _ := a.Prefix(64)
		if _, ok := aliased[p]; !ok {
			kept++
		}
	}
	if kept != plain {
		t.Fatalf("dealias dropped non-aliased entries: %d of %d", kept, plain)
	}
}
