// Package hitlist builds a TUM-IPv6-Hitlist-style target list over the
// simulated world, reproducing the biases the paper contrasts NTP
// sourcing against (§2.1, §3.2): seeds come from DNS/CT-style footprints
// and traceroute-style router discovery, so servers and infrastructure
// are overrepresented and firewalled end-user gear is mostly absent;
// aliased CDN prefixes contribute large responsive blocks; and a long
// tail of stale entries makes the full list orders of magnitude larger
// than its responsive "public" subset.
package hitlist

import (
	"context"
	"errors"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/netsim"
	"ntpscan/internal/rng"
	"ntpscan/internal/world"
)

// Config tunes list construction.
type Config struct {
	// Seed drives the probabilistic parts (DNS visibility draws, stale
	// synthesis).
	Seed uint64
	// StaleFactor is how many synthetic stale addresses are added per
	// device-backed seed. The real full list is ~100x its responsive
	// subset; the default of 3 keeps experiments tractable and the
	// full≫public ordering intact (EXPERIMENTS.md discusses this).
	StaleFactor float64
	// CDNAliases is how many aliased addresses each CDN edge
	// contributes (aliased-prefix expansion).
	CDNAliases int
}

func (c *Config) fillDefaults() {
	if c.StaleFactor == 0 {
		c.StaleFactor = 3
	}
	if c.CDNAliases == 0 {
		c.CDNAliases = 30
	}
}

// Hitlist is a built target list.
type Hitlist struct {
	// Full is the unfiltered list (the paper scans this variant).
	Full []netip.Addr
	// BySource counts entries per seed source, for diagnostics.
	BySource map[string]int
}

// Build assembles the full hitlist from the world's seed surface.
func Build(w *world.World, cfg Config) *Hitlist {
	cfg.fillDefaults()
	r := rng.New(cfg.Seed ^ 0x8172_1157)

	seen := make(map[netip.Addr]struct{})
	h := &Hitlist{BySource: make(map[string]int)}
	add := func(a netip.Addr, source string) {
		if _, dup := seen[a]; dup {
			return
		}
		seen[a] = struct{}{}
		h.Full = append(h.Full, a)
		h.BySource[source]++
	}

	deviceSeeds := 0
	for _, seed := range w.HitlistSeeds(r.Derive("seeds")) {
		add(seed.Addr, seed.Source)
		deviceSeeds++
		// CDN edges answer on whole blocks: expand aliases.
		if seed.Device != nil && seed.Device.Profile.Name == "cdn-edge" {
			for _, alias := range w.AliasAddrs(seed.Device, cfg.CDNAliases) {
				add(alias, "alias")
			}
		}
	}

	// Stale mass: DNS entries whose hosts are gone, mapped into
	// announced space so AS statistics stay realistic.
	stale := int(float64(deviceSeeds) * cfg.StaleFactor)
	sr := r.Derive("stale")
	for i := 0; i < stale; i++ {
		add(w.RandomUnroutedAddr(sr), "stale")
	}

	sort.Slice(h.Full, func(i, j int) bool { return h.Full[i].Less(h.Full[j]) })
	return h
}

// Len returns the full list's size.
func (h *Hitlist) Len() int { return len(h.Full) }

// LivenessPorts are probed by the responsiveness filter. A SYN answered
// with either an accept or a reset proves a live host; silence (drops,
// unrouted space) does not. Firewalled consumer gear that only exposes
// one high-traffic service still shows up through that port.
var LivenessPorts = []uint16{80, 443, 22}

// Probe reports whether addr appears alive from src: any accepted or
// refused connection counts, timeouts do not.
func Probe(ctx context.Context, fabric *netsim.Network, src, addr netip.Addr, timeout time.Duration) bool {
	// On a manual clock the fabric resolves every dial synchronously —
	// blackholes fail immediately — so the per-port timeout context
	// would only allocate, never fire.
	_, logical := fabric.Clock().(*netsim.ManualClock)
	for _, port := range LivenessPorts {
		pctx, cancel := ctx, context.CancelFunc(nil)
		if !logical {
			pctx, cancel = context.WithTimeout(ctx, timeout)
		}
		conn, err := fabric.DialTCP(pctx, src, netip.AddrPortFrom(addr, port))
		if cancel != nil {
			cancel()
		}
		if err == nil {
			conn.Close()
			return true
		}
		if errors.Is(err, netsim.ErrConnRefused) {
			return true
		}
	}
	return false
}

// AliasedPrefixes runs aliased-prefix detection: /64 networks holding
// at least threshold full-list entries are considered aliased (every
// address in the block answers — CDN front ends), as the TUM hitlist's
// APD step does.
func (h *Hitlist) AliasedPrefixes(threshold int) map[netip.Prefix]struct{} {
	counts := make(map[netip.Prefix]int)
	for _, a := range h.Full {
		counts[ipv6x.Prefix64(a)]++
	}
	out := make(map[netip.Prefix]struct{})
	for p, n := range counts {
		if n >= threshold {
			out[p] = struct{}{}
		}
	}
	return out
}

// Dealias caps addrs to at most keep entries per aliased /64, the
// treatment the published responsive list applies to aliased blocks.
// Order is preserved.
func (h *Hitlist) Dealias(addrs []netip.Addr, threshold, keep int) []netip.Addr {
	aliased := h.AliasedPrefixes(threshold)
	kept := make(map[netip.Prefix]int)
	var out []netip.Addr
	for _, a := range addrs {
		p := ipv6x.Prefix64(a)
		if _, isAliased := aliased[p]; isAliased {
			if kept[p] >= keep {
				continue
			}
			kept[p]++
		}
		out = append(out, a)
	}
	return out
}

// Public filters the full list down to responsive addresses — the
// published variant of the TUM hitlist. probe is called once per
// address from up to workers goroutines (responsiveness probing is
// latency-bound, exactly like the real filter); it must be safe for
// concurrent use. The result preserves the full list's order.
func (h *Hitlist) Public(probe func(netip.Addr) bool, workers int) []netip.Addr {
	if workers < 1 {
		workers = 1
	}
	alive := make([]bool, len(h.Full))
	var wg sync.WaitGroup
	var next atomic.Int64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(h.Full) {
					return
				}
				alive[idx] = probe(h.Full[idx])
			}
		}()
	}
	wg.Wait()
	var out []netip.Addr
	for i, ok := range alive {
		if ok {
			out = append(out, h.Full[i])
		}
	}
	return out
}
