package world

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"ntpscan/internal/asn"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/oui"
	"ntpscan/internal/rng"
)

// Role classifies how a device entered the population.
type Role int

const (
	// RoleResponsive devices are NTP clients with reachable services
	// (the paper's "Our Data" scan universe).
	RoleResponsive Role = iota
	// RoleHitlistOnly devices are reachable but not NTP-visible
	// (servers/infrastructure found through DNS-style sources).
	RoleHitlistOnly
	// RoleAddrOnly devices only contribute captured addresses.
	RoleAddrOnly
)

// Role returns the device's population role.
func (d *Device) Role() Role { return d.role }

// addrOnlyVendorTail lists the remaining Table 4 manufacturers, expanded
// into address-only device profiles programmatically.
var addrOnlyVendorTail = []struct {
	vendor string
	count  int
	region Region
}{
	{oui.VendorOgemray, 92000, RegionAsia},
	{oui.VendorChinaDragon, 70000, RegionAsia},
	{oui.VendorIComm, 49000, RegionAsia},
	{oui.VendorHaierTel, 45000, RegionAsia},
	{oui.VendorGaoshengda, 31000, RegionAsia},
	{oui.VendorFiberhome, 29000, RegionAsia},
	{oui.VendorTenda, 28000, RegionAsia},
	{oui.VendorEarda, 26000, RegionAsia},
	{oui.VendorShiyuan, 26000, RegionAsia},
	{oui.VendorCultraview, 25000, RegionAsia},
}

// allProfiles returns the static catalog plus the generated vendor tail.
func allProfiles() []*Profile {
	ps := Profiles()
	for _, v := range addrOnlyVendorTail {
		ps = append(ps, &Profile{
			Name: "iot-" + shortVendor(v.vendor), ASTyp: asn.TypeCableDSLISP,
			Region: v.region, CountAddrOnly: v.count,
			NTPClient: true, SyncWeight: 6,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: v.vendor,
			Filtered: true,
		})
	}
	return ps
}

func shortVendor(v string) string {
	if len(v) > 12 {
		v = v[:12]
	}
	out := make([]rune, 0, len(v))
	for _, r := range v {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		}
	}
	return string(out)
}

// buildDevices instantiates the scaled population.
func (w *World) buildDevices(r *rng.Stream) {
	id := 0
	for _, p := range allProfiles() {
		pr := r.Derive("profile/" + p.Name)
		add := func(full int, scale float64, role Role) {
			if full <= 0 {
				return
			}
			n := scaleCount(full, scale, 1)
			for i := 0; i < n; i++ {
				d := w.makeDevice(id, p, role, pr)
				id++
				w.Devices = append(w.Devices, d)
			}
		}
		add(p.CountResponsive, w.Cfg.DeviceScale, RoleResponsive)
		add(p.CountHitlistOnly, w.Cfg.DeviceScale, RoleHitlistOnly)
		add(p.CountAddrOnly, w.Cfg.AddrScale, RoleAddrOnly)
	}
	// Size customer /48 pools now that per-AS device counts are known.
	for _, c := range w.Countries {
		for _, lst := range [][]*AS{c.Eyeball, c.Content, c.NSP, c.Entpr} {
			for _, a := range lst {
				a.Cust48Pool = cust48Pool(a, c.Spec.EyeballDensity)
			}
		}
	}
}

// cust48Pool sizes an AS's customer /48 pool so eyeball density matches
// the country profile (Indian mobile carriers pack hundreds of clients
// per /48; European DSL gives nearly every customer their own).
func cust48Pool(a *AS, density int) int {
	if density < 1 {
		density = 1
	}
	var pool int
	if a.Type == asn.TypeCableDSLISP {
		pool = a.deviceCount / density
	} else {
		pool = a.deviceCount // servers spread out
	}
	if pool < 2 {
		pool = 2
	}
	if pool > 0xffff {
		pool = 0xffff
	}
	return pool
}

// makeDevice creates one device with placement and identity drawn from
// pr.
func (w *World) makeDevice(id int, p *Profile, role Role, pr *rng.Stream) *Device {
	d := &Device{ID: id, Profile: p, role: role, KeySlot: -1}

	// Placement: responsive/addr-only NTP clients live in vantage
	// countries (only their zones reach our capture servers);
	// hitlist-only deployments spread everywhere.
	country := w.pickCountry(p, role, pr)
	d.Country = country.Spec.Code
	d.AS = w.pickAS(country, p.ASTyp, pr)
	d.AS.deviceCount++

	// Hardware address. An empty Vendor with HasUniversalMAC models
	// manufacturers absent from the IEEE registry (the paper's
	// "unlisted" class): the unique bit is set but no OUI record
	// exists.
	if p.AddrMode == AddrEUI64 && p.HasUniversalMAC {
		var block [3]byte
		if p.Vendor != "" {
			ouis := w.OUIReg.OUIs(p.Vendor)
			block = ouis[pr.Intn(len(ouis))]
		} else {
			pr.Bytes(block[:])
			block[0] &^= 0x03 // universal unicast, but unregistered
		}
		var serial [3]byte
		pr.Bytes(serial[:])
		d.MAC = ipv6x.MAC{block[0], block[1], block[2], serial[0], serial[1], serial[2]}
		d.HasMAC = true
	}

	// Identity and posture. Reuse pools shrink with DeviceScale so the
	// devices-per-key ratio stays at its full-scale calibration (~60
	// addresses per leaked image key, §6).
	d.CertSerial = pr.Uint64()
	if p.KeyReuseProb > 0 && pr.Bool(p.KeyReuseProb) && p.KeyReusePoolSize > 0 {
		pool := int(float64(p.KeyReusePoolSize) * w.Cfg.DeviceScale)
		if pool < 1 {
			pool = 1
		}
		// Zipf-skewed slot choice: the most widespread firmware image
		// accounts for a large share of the reuse population (the
		// paper's single key on 45 377 hosts).
		d.KeySlot = pr.Zipf(pool, 1.4)
		d.KeyID = reuseKeyID(p.Name, d.KeySlot)
	} else {
		binary.LittleEndian.PutUint64(d.KeyID[:8], pr.Uint64())
		binary.LittleEndian.PutUint64(d.KeyID[8:], pr.Uint64())
	}
	d.TLSEnabled = pr.Bool(p.TLSProb)
	d.AuthOn = pr.Bool(p.AuthProb)
	if p.SSH != nil && !p.SSH.NoPatch {
		lag := int(pr.ExpFloat64() * p.OutdatedBias * 1.2)
		d.PatchRev = p.SSH.MaxRev - lag
		if d.PatchRev < 0 {
			d.PatchRev = 0
		}
	}

	// Churn parameters.
	epochs := p.PrefixEpochs
	if epochs < 1 {
		epochs = 1
	}
	d.epochLen = CollectionWindow / time.Duration(epochs)
	d.phase = time.Duration(pr.Uint64n(uint64(d.epochLen)))
	d.lastEpoch = -1

	// Reachable devices get their service host built once.
	if role != RoleAddrOnly && len(p.Services) > 0 {
		d.host = w.buildHost(d)
	} else if role != RoleAddrOnly {
		// Profile with no services (core routers): registered so the
		// address is routed, but every port is closed.
		d.host = w.emptyHost(d)
	}
	return d
}

// reuseKeyID derives the shared key for a reuse-pool slot.
func reuseKeyID(profile string, slot int) [16]byte {
	h := fnv.New128a()
	h.Write([]byte(profile))
	h.Write([]byte{byte(slot), byte(slot >> 8), byte(slot >> 16)})
	var out [16]byte
	h.Sum(out[:0])
	return out
}

// pickCountry selects a placement country for a device.
func (w *World) pickCountry(p *Profile, role Role, pr *rng.Stream) *Country {
	vantageOnly := role != RoleHitlistOnly
	// Eyeball address-only populations follow client mass linearly
	// (India's dominance in Table 7); reachable deployments (servers,
	// CPE with remote access) are flattened toward content-heavy
	// markets.
	linear := role == RoleAddrOnly
	weights := make([]float64, len(w.Countries))
	for i, c := range w.Countries {
		if vantageOnly && !c.Spec.Vantage {
			continue
		}
		weights[i] = regionWeight(p.Region, c.Spec, linear)
	}
	idx := pr.WeightedIndex(weights)
	if idx < 0 {
		idx = 0
	}
	return w.Countries[idx]
}

// regionWeight biases placement per the profile's market region. linear
// selects raw client-mass weighting within RegionGlobal (eyeball
// populations) instead of the flattened server weighting.
func regionWeight(region Region, spec CountrySpec, linear bool) float64 {
	switch region {
	case RegionEurope:
		switch spec.Code {
		case "DE":
			return 45
		case "GB":
			return 14
		case "ES":
			return 12
		case "NL":
			return 10
		case "PL":
			return 9
		case "FR", "IT":
			return 8
		case "SE", "CH":
			return 3
		default:
			return 0.5
		}
	case RegionAsia:
		switch spec.Code {
		case "IN":
			return 85
		case "JP":
			return 9
		case "CN":
			return 12
		case "VN", "TH", "KR":
			return 3
		default:
			return 0.5
		}
	case RegionAmericas:
		switch spec.Code {
		case "US":
			return 65
		case "BR":
			return 30
		case "CA", "MX":
			return 5
		default:
			return 0.5
		}
	default: // RegionGlobal
		w := spec.ClientPop
		if w < 1 {
			w = 1
		}
		if linear {
			return w
		}
		// Sub-linear so content-heavy western countries are not
		// drowned out by India's client mass.
		return sqrtish(w)
	}
}

func sqrtish(v float64) float64 {
	// Cheap x^0.6 approximation via two multiplications of x^0.5 and
	// x^0.1 is overkill; plain square root reads better and the exact
	// exponent is immaterial.
	s := 1.0
	for v > 1 {
		v /= 4
		s *= 2
	}
	return s * (1 + v) / 2
}

// pickAS selects an AS of the wanted type in the country, Zipf-weighted
// so a few ASes dominate (as in real markets).
func (w *World) pickAS(c *Country, typ asn.Type, pr *rng.Stream) *AS {
	var lst []*AS
	switch typ {
	case asn.TypeCableDSLISP:
		lst = c.Eyeball
	case asn.TypeContent:
		lst = c.Content
	case asn.TypeNSP:
		lst = c.NSP
	default:
		lst = c.Entpr
	}
	if len(lst) == 0 {
		lst = c.Eyeball
	}
	return lst[pr.Zipf(len(lst), 1.15)]
}

// indexDevices builds the per-country sync-sampling tables over the
// address-only population. Responsive NTP devices are excluded here:
// because DeviceScale and AddrScale differ, volume-sampling them would
// grossly overweight their share of the captured address mass. The
// collection driver captures them through a dedicated channel instead
// (see core).
func (w *World) indexDevices() {
	for _, d := range w.Devices {
		if !d.Profile.NTPClient || d.role != RoleAddrOnly {
			continue
		}
		w.byCountry[d.Country] = append(w.byCountry[d.Country], d)
	}
	for code, devs := range w.byCountry {
		cum := make([]float64, len(devs))
		total := 0.0
		for i, d := range devs {
			total += d.Profile.SyncWeight
			cum[i] = total
		}
		w.cumSync[code] = cum
		w.syncMass[code] = total
	}
}

// SyncMass returns the total sync weight of NTP clients in a country —
// the expected relative capture volume for a vantage server there.
func (w *World) SyncMass(country string) float64 { return w.syncMass[country] }

// NTPClients returns the NTP-client devices in a country.
func (w *World) NTPClients(country string) []*Device { return w.byCountry[country] }
