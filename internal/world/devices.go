package world

import (
	"hash/fnv"

	"ntpscan/internal/asn"
	"ntpscan/internal/oui"
	"ntpscan/internal/rng"
)

// Role classifies how a device entered the population.
type Role int

const (
	// RoleResponsive devices are NTP clients with reachable services
	// (the paper's "Our Data" scan universe).
	RoleResponsive Role = iota
	// RoleHitlistOnly devices are reachable but not NTP-visible
	// (servers/infrastructure found through DNS-style sources).
	RoleHitlistOnly
	// RoleAddrOnly devices only contribute captured addresses.
	RoleAddrOnly
)

// Role returns the device's population role.
func (d *Device) Role() Role { return d.role }

// addrOnlyVendorTail lists the remaining Table 4 manufacturers, expanded
// into address-only device profiles programmatically.
var addrOnlyVendorTail = []struct {
	vendor string
	count  int
	region Region
}{
	{oui.VendorOgemray, 92000, RegionAsia},
	{oui.VendorChinaDragon, 70000, RegionAsia},
	{oui.VendorIComm, 49000, RegionAsia},
	{oui.VendorHaierTel, 45000, RegionAsia},
	{oui.VendorGaoshengda, 31000, RegionAsia},
	{oui.VendorFiberhome, 29000, RegionAsia},
	{oui.VendorTenda, 28000, RegionAsia},
	{oui.VendorEarda, 26000, RegionAsia},
	{oui.VendorShiyuan, 26000, RegionAsia},
	{oui.VendorCultraview, 25000, RegionAsia},
}

// allProfiles returns the static catalog plus the generated vendor tail.
func allProfiles() []*Profile {
	ps := Profiles()
	for _, v := range addrOnlyVendorTail {
		ps = append(ps, &Profile{
			Name: "iot-" + shortVendor(v.vendor), ASTyp: asn.TypeCableDSLISP,
			Region: v.region, CountAddrOnly: v.count,
			NTPClient: true, SyncWeight: 6,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: v.vendor,
			Filtered: true,
		})
	}
	return ps
}

func shortVendor(v string) string {
	if len(v) > 12 {
		v = v[:12]
	}
	out := make([]rune, 0, len(v))
	for _, r := range v {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		}
	}
	return string(out)
}

// buildDevices materializes the whole population eagerly into
// w.Devices, in global-ID order. Reachable devices reuse the structs
// buildReachable already created (they carry fabric hosts); the
// address-only mass is derived through the same pure function a lazy
// world's Materializer uses, so both modes agree field for field.
func (w *World) buildDevices() {
	w.Devices = make([]*Device, 0, w.deviceTotal)
	var r rng.Stream
	next := 0 // cursor into w.reachable, which is in global-ID order
	for si := range w.segments {
		seg := &w.segments[si]
		if seg.role != RoleAddrOnly {
			w.Devices = append(w.Devices, w.reachable[next:next+int(seg.n)]...)
			next += int(seg.n)
			continue
		}
		for i := int32(0); i < seg.n; i++ {
			d := &Device{}
			w.materializeInto(seg.base+i, d, &r)
			w.Devices = append(w.Devices, d)
		}
	}
}

// cust48Pool sizes an AS's customer /48 pool so eyeball density matches
// the country profile (Indian mobile carriers pack hundreds of clients
// per /48; European DSL gives nearly every customer their own).
func cust48Pool(a *AS, density int) int {
	if density < 1 {
		density = 1
	}
	var pool int
	if a.Type == asn.TypeCableDSLISP {
		pool = a.deviceCount / density
	} else {
		pool = a.deviceCount // servers spread out
	}
	if pool < 2 {
		pool = 2
	}
	if pool > 0xffff {
		pool = 0xffff
	}
	return pool
}

// reuseKeyID derives the shared key for a reuse-pool slot.
func reuseKeyID(profile string, slot int) [16]byte {
	h := fnv.New128a()
	h.Write([]byte(profile))
	h.Write([]byte{byte(slot), byte(slot >> 8), byte(slot >> 16)})
	var out [16]byte
	h.Sum(out[:0])
	return out
}

// Country placement: responsive/addr-only NTP clients live in vantage
// countries (only their zones reach our capture servers); hitlist-only
// deployments spread everywhere. Eyeball address-only populations
// follow client mass linearly (India's dominance in Table 7); reachable
// deployments (servers, CPE with remote access) are flattened toward
// content-heavy markets. The weight vectors are precomputed per
// (region, role shape) in buildSegments; placeDevice in materialize.go
// draws against them.

// regionWeight biases placement per the profile's market region. linear
// selects raw client-mass weighting within RegionGlobal (eyeball
// populations) instead of the flattened server weighting.
func regionWeight(region Region, spec CountrySpec, linear bool) float64 {
	switch region {
	case RegionEurope:
		switch spec.Code {
		case "DE":
			return 45
		case "GB":
			return 14
		case "ES":
			return 12
		case "NL":
			return 10
		case "PL":
			return 9
		case "FR", "IT":
			return 8
		case "SE", "CH":
			return 3
		default:
			return 0.5
		}
	case RegionAsia:
		switch spec.Code {
		case "IN":
			return 85
		case "JP":
			return 9
		case "CN":
			return 12
		case "VN", "TH", "KR":
			return 3
		default:
			return 0.5
		}
	case RegionAmericas:
		switch spec.Code {
		case "US":
			return 65
		case "BR":
			return 30
		case "CA", "MX":
			return 5
		default:
			return 0.5
		}
	default: // RegionGlobal
		w := spec.ClientPop
		if w < 1 {
			w = 1
		}
		if linear {
			return w
		}
		// Sub-linear so content-heavy western countries are not
		// drowned out by India's client mass.
		return sqrtish(w)
	}
}

func sqrtish(v float64) float64 {
	// Cheap x^0.6 approximation via two multiplications of x^0.5 and
	// x^0.1 is overkill; plain square root reads better and the exact
	// exponent is immaterial.
	s := 1.0
	for v > 1 {
		v /= 4
		s *= 2
	}
	return s * (1 + v) / 2
}

// pickAS selects an AS of the wanted type in the country, Zipf-weighted
// so a few ASes dominate (as in real markets).
func (w *World) pickAS(c *Country, typ asn.Type, pr *rng.Stream) *AS {
	var lst []*AS
	switch typ {
	case asn.TypeCableDSLISP:
		lst = c.Eyeball
	case asn.TypeContent:
		lst = c.Content
	case asn.TypeNSP:
		lst = c.NSP
	default:
		lst = c.Entpr
	}
	if len(lst) == 0 {
		lst = c.Eyeball
	}
	return lst[pr.Zipf(len(lst), 1.15)]
}

// indexDevices resolves the per-country client-ID index (built by the
// counting pass over the address-only population — responsive NTP
// devices are excluded because DeviceScale and AddrScale differ, so
// volume-sampling them would grossly overweight their share of the
// captured address mass; the collection driver captures them through a
// dedicated channel instead, see core) into materialized device slices
// for the eager accessors.
func (w *World) indexDevices() {
	for code, ids := range w.clientIDs {
		devs := make([]*Device, len(ids))
		for i, gid := range ids {
			devs[i] = w.Devices[gid]
		}
		w.byCountry[code] = devs
	}
}

// SyncMass returns the total sync weight of NTP clients in a country —
// the expected relative capture volume for a vantage server there.
func (w *World) SyncMass(country string) float64 { return w.syncMass[country] }

// NTPClients returns the NTP-client devices in a country (eager worlds
// only; lazy worlds resolve SampleClientID through a Materializer).
func (w *World) NTPClients(country string) []*Device { return w.byCountry[country] }
