package world

import (
	"testing"

	"ntpscan/internal/rng"
)

func lazyCfg(seed uint64) Config {
	c := testCfg(seed)
	c.Lazy = true
	return c
}

// sameDevice asserts field-identity between an eagerly built device and
// a lazily materialized one.
func sameDevice(t *testing.T, eager *World, a *Device, lazy *World, b *Device) {
	t.Helper()
	if a.ID != b.ID || a.Profile.Name != b.Profile.Name || a.Country != b.Country ||
		a.AS.Number != b.AS.Number || a.role != b.role {
		t.Fatalf("device %d placement differs: %+v vs %+v", a.ID, a, b)
	}
	if a.MAC != b.MAC || a.HasMAC != b.HasMAC {
		t.Fatalf("device %d MAC differs: %v/%v vs %v/%v", a.ID, a.MAC, a.HasMAC, b.MAC, b.HasMAC)
	}
	if a.TLSEnabled != b.TLSEnabled || a.AuthOn != b.AuthOn || a.PatchRev != b.PatchRev ||
		a.CertSerial != b.CertSerial || a.KeyID != b.KeyID || a.KeySlot != b.KeySlot {
		t.Fatalf("device %d identity differs", a.ID)
	}
	if a.epochLen != b.epochLen || a.phase != b.phase {
		t.Fatalf("device %d churn params differ", a.ID)
	}
	for _, epoch := range []int64{0, 1, 7} {
		if ea, eb := eager.AddrAt(a, epoch), lazy.AddrAt(b, epoch); ea != eb {
			t.Fatalf("device %d epoch %d address differs: %v vs %v", a.ID, epoch, ea, eb)
		}
	}
}

// TestLazyEagerEquivalence is the golden walk: every device of the
// eager SCALE=1 world — every country, AS, and /48 it occupies — must
// be field-identical to what on-demand materialization derives for the
// same global ID.
func TestLazyEagerEquivalence(t *testing.T) {
	eager := New(testCfg(1))
	lazy := New(lazyCfg(1))
	if lazy.Devices != nil {
		t.Fatalf("lazy world materialized %d devices eagerly", len(lazy.Devices))
	}
	if got, want := lazy.DeviceCount(), len(eager.Devices); got != want {
		t.Fatalf("population size differs: lazy %d, eager %d", got, want)
	}
	m := lazy.NewMaterializer(1 << 16)
	for _, d := range eager.Devices {
		sameDevice(t, eager, d, lazy, m.Device(int32(d.ID)))
	}

	// The resident reachable population must agree too (same structs
	// both modes measure through).
	er, lr := eager.Reachable(), lazy.Reachable()
	if len(er) != len(lr) {
		t.Fatalf("reachable counts differ: %d vs %d", len(er), len(lr))
	}
	for i := range er {
		sameDevice(t, eager, er[i], lazy, lr[i])
	}
}

// TestLazySamplingMatchesEager: the weighted client draw consumes the
// same stream state and lands on the same device in both modes.
func TestLazySamplingMatchesEager(t *testing.T) {
	eager := New(testCfg(1))
	lazy := New(lazyCfg(1))
	re, rl := rng.New(42), rng.New(42)
	for i := 0; i < 500; i++ {
		for _, country := range []string{"IN", "DE", "US", "XX"} {
			d := eager.SampleClient(country, re)
			gid := lazy.SampleClientID(country, rl)
			if d == nil {
				if gid != -1 {
					t.Fatalf("%s: eager empty, lazy sampled %d", country, gid)
				}
				continue
			}
			if int32(d.ID) != gid {
				t.Fatalf("%s draw %d: eager device %d, lazy id %d", country, i, d.ID, gid)
			}
		}
	}
	if eager.SyncMass("IN") != lazy.SyncMass("IN") ||
		eager.ClientEpochMass("IN") != lazy.ClientEpochMass("IN") {
		t.Fatal("per-country index masses differ between modes")
	}
}

// TestArenaHitPathAllocates pins the arena hit path at zero
// allocations: resolving a resident device must not touch the heap.
func TestArenaHitPathAllocates(t *testing.T) {
	w := New(lazyCfg(1))
	m := w.NewMaterializer(1 << 16)
	gid := w.SampleClientID("IN", rng.New(1))
	if gid < 0 {
		t.Fatal("no client to sample")
	}
	m.Device(gid)
	if avg := testing.AllocsPerRun(200, func() { m.Device(gid) }); avg != 0 {
		t.Fatalf("arena hit path allocates %.1f objects per lookup", avg)
	}
}

// TestArenaEviction drives a one-slot arena and checks the conservation
// law the obs invariants rely on: materializations - evictions ==
// resident devices, and hits + materializations == lookups.
func TestArenaEviction(t *testing.T) {
	w := New(lazyCfg(1))
	m := w.NewMaterializer(1) // clamps to one slot
	if m.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", m.Capacity())
	}
	a := m.Device(0)
	if a.ID != 0 {
		t.Fatalf("materialized device %d, want 0", a.ID)
	}
	m.Device(0) // hit
	b := m.Device(1)
	if b.ID != 1 {
		t.Fatalf("materialized device %d, want 1", b.ID)
	}
	st := m.TakeStats()
	if st.Materializations != 2 || st.Hits != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 materializations, 1 hit, 1 eviction", st)
	}
	if m.ResidentBytes() != slotBytes {
		t.Fatalf("resident bytes = %d, want %d", m.ResidentBytes(), slotBytes)
	}
	if got := m.TakeStats(); got != (ArenaStats{}) {
		t.Fatalf("TakeStats did not reset: %+v", got)
	}
}

// TestArenaSnapshotRestore: a restored arena must continue the exact
// hit/miss/eviction sequence the original would have produced.
func TestArenaSnapshotRestore(t *testing.T) {
	w := New(lazyCfg(1))
	ids := w.clientIDs["IN"]
	if len(ids) < 8 {
		t.Fatalf("too few IN clients: %d", len(ids))
	}
	budget := 4 * slotBytes

	drive := func(m *Materializer, seq []int32) ArenaStats {
		var total ArenaStats
		for _, gid := range seq {
			m.Device(gid)
			s := m.TakeStats()
			total.Materializations += s.Materializations
			total.Hits += s.Hits
			total.Evictions += s.Evictions
		}
		return total
	}

	warm := []int32{ids[0], ids[1], ids[2], ids[3], ids[1], ids[4]}
	tail := []int32{ids[5], ids[1], ids[6], ids[2], ids[7], ids[0], ids[1]}

	// Uninterrupted run.
	full := w.NewMaterializer(budget)
	drive(full, warm)
	wantTail := drive(full, tail)

	// Snapshot after the warmup, restore into a fresh arena, replay.
	orig := w.NewMaterializer(budget)
	drive(orig, warm)
	snap := orig.Snapshot()
	resumed := w.NewMaterializer(budget)
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if gotTail := drive(resumed, tail); gotTail != wantTail {
		t.Fatalf("resumed tail stats %+v, want %+v", gotTail, wantTail)
	}

	// Capacity mismatch is rejected, not silently misread.
	if err := w.NewMaterializer(budget * 2).Restore(snap); err == nil {
		t.Fatal("restore across a different byte budget succeeded")
	}
}
