// Package world generates and operates the synthetic IPv6 Internet
// population the reproduction measures. It stands in for the paper's
// actual measurement subject — roughly three billion observed client
// addresses behind the NTP Pool — which cannot be reached from here.
//
// The world is generated from device profiles (consumer CPE, phones,
// servers, IoT brokers, CDN edges, routers; see profiles.go) placed into
// countries and autonomous systems, with per-profile addressing
// behaviour (EUI-64, privacy rotation, manual numbering), dynamic-prefix
// churn, service exposure, and security posture. Every downstream number
// is re-measured through the NTP capture servers and the scan pipeline;
// nothing reads the generator's ground truth directly.
//
// Two scale knobs keep experiments tractable: DeviceScale scales the
// scan-responsive population (the paper's Tables 2/3 universe) and
// AddrScale scales the address-only eyeball population that dominates
// collection volume (Table 1/7 universe). EXPERIMENTS.md compares shapes,
// never absolute counts.
package world

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"ntpscan/internal/asn"
	"ntpscan/internal/geo"
	"ntpscan/internal/ipv6x"
	"ntpscan/internal/netsim"
	"ntpscan/internal/oui"
	"ntpscan/internal/rng"
)

// CollectionWindow is the paper's address-collection span (July 20 to
// August 16, 2024: four weeks).
const CollectionWindow = 28 * 24 * time.Hour

// Config tunes world generation.
type Config struct {
	// Seed makes the whole world reproducible.
	Seed uint64
	// DeviceScale multiplies the scan-responsive populations
	// (default 0.01).
	DeviceScale float64
	// AddrScale multiplies the address-only eyeball populations
	// (default 1e-5, yielding ~30k distinct collected addresses).
	AddrScale float64
	// ASScale multiplies per-country AS counts (default 0.05).
	ASScale float64
	// Lazy skips eager materialization of the address-only population:
	// Devices stays empty and consumers resolve device IDs on demand
	// through a Materializer. Reachable devices are always resident.
	// Derivation is identical in both modes — an eager world's Devices
	// are exactly what lazy materialization would produce.
	Lazy bool
	// Start is the collection start instant (default 2024-07-20 UTC).
	Start time.Time
	// Loss, if set, configures fabric packet loss.
	Loss float64
	// DialTimeout is the fabric's blackhole patience (default 5 ms;
	// mass experiments drop it to ~100 µs — the fabric has no real
	// latency, so a silent address is silent immediately).
	DialTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.DeviceScale == 0 {
		c.DeviceScale = 0.01
	}
	if c.AddrScale == 0 {
		c.AddrScale = 1e-5
	}
	if c.ASScale == 0 {
		c.ASScale = 0.05
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 7, 20, 0, 0, 0, 0, time.UTC)
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Millisecond
	}
}

// CountrySpec describes one country's population parameters. ClientPop
// follows the paper's Table 7 ordering (captured addresses per vantage
// country: India dominates by two orders of magnitude over the
// Netherlands).
type CountrySpec struct {
	Code      string
	Name      string
	ClientPop float64 // relative syncing-client mass in the zone
	PoolBG    float64 // third-party pool servers (background weight)
	Vantage   bool    // the paper deploys a capture server here
	// AS counts at full scale.
	EyeballASes, ContentASes, NSPASes, EnterpriseASes int
	// EyeballDensity is how many devices share a /48 in eyeball ASes
	// (mobile carriers pack customers densely; DSL sparsely).
	EyeballDensity int
}

// countries is the world's country table: the 11 vantage countries plus
// a tail of others whose clients rarely reach our servers (global-zone
// fallback only).
func countrySpecs() []CountrySpec {
	return []CountrySpec{
		// Vantage countries; ClientPop shaped after Table 7.
		{Code: "IN", Name: "India", ClientPop: 2569, PoolBG: 40, Vantage: true,
			EyeballASes: 900, ContentASes: 400, NSPASes: 150, EnterpriseASes: 300, EyeballDensity: 420},
		{Code: "BR", Name: "Brazil", ClientPop: 224, PoolBG: 60, Vantage: true,
			EyeballASes: 2200, ContentASes: 500, NSPASes: 200, EnterpriseASes: 400, EyeballDensity: 40},
		{Code: "JP", Name: "Japan", ClientPop: 69, PoolBG: 80, Vantage: true,
			EyeballASes: 500, ContentASes: 450, NSPASes: 140, EnterpriseASes: 350, EyeballDensity: 25},
		{Code: "ZA", Name: "South Africa", ClientPop: 37, PoolBG: 25, Vantage: true,
			EyeballASes: 300, ContentASes: 150, NSPASes: 60, EnterpriseASes: 120, EyeballDensity: 30},
		{Code: "ES", Name: "Spain", ClientPop: 33, PoolBG: 70, Vantage: true,
			EyeballASes: 350, ContentASes: 250, NSPASes: 80, EnterpriseASes: 200, EyeballDensity: 12},
		{Code: "GB", Name: "United Kingdom", ClientPop: 31, PoolBG: 140, Vantage: true,
			EyeballASes: 450, ContentASes: 500, NSPASes: 120, EnterpriseASes: 350, EyeballDensity: 10},
		{Code: "DE", Name: "Germany", ClientPop: 26, PoolBG: 220, Vantage: true,
			EyeballASes: 550, ContentASes: 700, NSPASes: 160, EnterpriseASes: 450, EyeballDensity: 6},
		{Code: "US", Name: "United States", ClientPop: 24, PoolBG: 480, Vantage: true,
			EyeballASes: 1500, ContentASes: 1800, NSPASes: 400, EnterpriseASes: 900, EyeballDensity: 8},
		{Code: "PL", Name: "Poland", ClientPop: 19, PoolBG: 55, Vantage: true,
			EyeballASes: 600, ContentASes: 250, NSPASes: 90, EnterpriseASes: 180, EyeballDensity: 12},
		{Code: "AU", Name: "Australia", ClientPop: 10, PoolBG: 60, Vantage: true,
			EyeballASes: 350, ContentASes: 300, NSPASes: 80, EnterpriseASes: 200, EyeballDensity: 10},
		{Code: "NL", Name: "the Netherlands", ClientPop: 9, PoolBG: 130, Vantage: true,
			EyeballASes: 250, ContentASes: 500, NSPASes: 100, EnterpriseASes: 250, EyeballDensity: 6},
		// Non-vantage tail: their clients stay with background servers.
		{Code: "FR", Name: "France", ClientPop: 30, PoolBG: 150,
			EyeballASes: 400, ContentASes: 450, NSPASes: 110, EnterpriseASes: 300, EyeballDensity: 8},
		{Code: "IT", Name: "Italy", ClientPop: 22, PoolBG: 90,
			EyeballASes: 350, ContentASes: 300, NSPASes: 90, EnterpriseASes: 250, EyeballDensity: 10},
		{Code: "CN", Name: "China", ClientPop: 400, PoolBG: 45,
			EyeballASes: 500, ContentASes: 400, NSPASes: 150, EnterpriseASes: 300, EyeballDensity: 300},
		{Code: "KR", Name: "South Korea", ClientPop: 25, PoolBG: 35,
			EyeballASes: 150, ContentASes: 200, NSPASes: 60, EnterpriseASes: 150, EyeballDensity: 40},
		{Code: "CA", Name: "Canada", ClientPop: 9, PoolBG: 80,
			EyeballASes: 250, ContentASes: 300, NSPASes: 80, EnterpriseASes: 200, EyeballDensity: 8},
		{Code: "SE", Name: "Sweden", ClientPop: 6, PoolBG: 70,
			EyeballASes: 150, ContentASes: 250, NSPASes: 60, EnterpriseASes: 150, EyeballDensity: 6},
		{Code: "CH", Name: "Switzerland", ClientPop: 5, PoolBG: 75,
			EyeballASes: 120, ContentASes: 250, NSPASes: 50, EnterpriseASes: 150, EyeballDensity: 6},
		{Code: "VN", Name: "Vietnam", ClientPop: 60, PoolBG: 15,
			EyeballASes: 120, ContentASes: 80, NSPASes: 40, EnterpriseASes: 80, EyeballDensity: 200},
		{Code: "TH", Name: "Thailand", ClientPop: 40, PoolBG: 20,
			EyeballASes: 140, ContentASes: 90, NSPASes: 40, EnterpriseASes: 90, EyeballDensity: 150},
		{Code: "MX", Name: "Mexico", ClientPop: 20, PoolBG: 25,
			EyeballASes: 200, ContentASes: 120, NSPASes: 50, EnterpriseASes: 120, EyeballDensity: 50},
	}
}

// Country is a generated country with its AS lists.
type Country struct {
	Spec    CountrySpec
	Index   int
	Eyeball []*AS
	Content []*AS
	NSP     []*AS
	Entpr   []*AS
}

// AS is one generated autonomous system.
type AS struct {
	Number  uint32
	Country string
	Type    asn.Type
	// Hi32 is the top 32 bits of the /32 allocation.
	Hi32 uint32
	// Cust48Pool is the number of distinct customer /48s addresses are
	// spread over.
	Cust48Pool int
	// deviceCount tracks how many devices landed here (for pool
	// sizing).
	deviceCount int
}

// Prefix returns the AS's announced /32.
func (a *AS) Prefix() netip.Prefix {
	return netip.PrefixFrom(ipv6x.FromParts(uint64(a.Hi32)<<32, 0), 32)
}

// Device is one simulated machine.
type Device struct {
	ID      int
	Profile *Profile
	AS      *AS
	Country string
	role    Role

	// MAC is the embedded hardware address for universal-MAC EUI-64
	// devices; locally administered EUI devices derive a fresh MAC per
	// address epoch.
	MAC    ipv6x.MAC
	HasMAC bool

	// Security/identity material (responsive devices only).
	TLSEnabled bool
	AuthOn     bool
	PatchRev   int
	CertSerial uint64
	KeyID      [16]byte // shared across devices when reused
	KeySlot    int      // -1 = unique key, else reuse-pool slot

	// epochLen/phase drive address churn.
	epochLen time.Duration
	phase    time.Duration

	// registration state for responsive devices. mu serialises epoch
	// rollovers so sharded collection workers can resolve the same
	// device concurrently; the address itself is a pure function of
	// (seed, device, epoch), so whichever worker wins sees the same
	// value.
	mu        sync.Mutex
	lastEpoch int64
	lastAddr  netip.Addr
	host      *netsim.Host
}

// World is the generated population plus its registries and fabric.
type World struct {
	Cfg       Config
	fabric    *netsim.Network
	clock     *netsim.ManualClock
	ASReg     *asn.Registry
	Geo       *geo.DB
	OUIReg    *oui.Registry
	Countries []*Country

	// Devices is the eagerly materialized population, in global-ID
	// order. Lazy worlds leave it empty; use Reachable, SampleClientID,
	// and a Materializer instead.
	Devices []*Device

	// segments partitions the global device-ID space by (profile,
	// role); device state is derived on demand from the ID alone (see
	// materialize.go). deviceTotal is the ID-space size.
	segments    []segment
	deviceTotal int32
	// reachable holds the materialized scan-reachable population (the
	// devices with fabric state), present in eager and lazy worlds.
	reachable []*Device

	// Per-country sync-sampling indexes over the address-only NTP
	// clients: device IDs with cumulative sync weights for O(log n)
	// weighted sampling, total sync mass, and summed address epochs.
	clientIDs map[string][]int32
	cumSync   map[string][]float64
	syncMass  map[string]float64
	epochMass map[string]int64
	// byCountry resolves clientIDs to materialized devices (eager
	// worlds only).
	byCountry map[string][]*Device

	root *rng.Stream
}

// New builds a world. Generation is deterministic in cfg.
func New(cfg Config) *World {
	cfg.fillDefaults()
	root := rng.New(cfg.Seed ^ 0x776f726c64)
	clock := netsim.NewManualClock(cfg.Start)
	w := &World{
		Cfg:       cfg,
		fabric:    netsim.New(netsim.Config{Clock: clock, DialTimeout: cfg.DialTimeout, LossProb: cfg.Loss, Seed: cfg.Seed}),
		clock:     clock,
		ASReg:     asn.NewRegistry(),
		Geo:       geo.NewDB(),
		OUIReg:    oui.Default(),
		clientIDs: make(map[string][]int32),
		cumSync:   make(map[string][]float64),
		syncMass:  make(map[string]float64),
		epochMass: make(map[string]int64),
		byCountry: make(map[string][]*Device),
		root:      root,
	}
	w.buildTopology(root.Derive("topology"))
	w.buildSegments()
	w.countPlacement()
	w.buildReachable()
	if !cfg.Lazy {
		w.buildDevices()
		w.indexDevices()
	}
	return w
}

// Fabric returns the network fabric the world is registered on.
func (w *World) Fabric() *netsim.Network { return w.fabric }

// Clock returns the world's logical clock.
func (w *World) Clock() *netsim.ManualClock { return w.clock }

// buildTopology creates countries, ASes, announcements, and geo mapping.
func (w *World) buildTopology(r *rng.Stream) {
	specs := countrySpecs()
	nextASN := uint32(201000)
	for ci, spec := range specs {
		c := &Country{Spec: spec, Index: ci}
		w.Geo.AddCountry(geo.Country{
			Code: spec.Code, Name: spec.Name,
			RoutedV6:    spec.ClientPop,
			PoolServers: int(spec.PoolBG),
			Population:  spec.ClientPop,
		})
		mk := func(n int, typ asn.Type, dst *[]*AS) {
			count := scaleCount(n, w.Cfg.ASScale, 1)
			for i := 0; i < count; i++ {
				a := &AS{
					Number:  nextASN,
					Country: spec.Code,
					Type:    typ,
					Hi32:    0x2a000000 | uint32(ci)<<16 | uint32(len(*dst)) | uint32(typeOffset(typ))<<12,
				}
				nextASN++
				*dst = append(*dst, a)
				w.ASReg.Register(asn.AS{
					Number: a.Number, Country: spec.Code, Type: typ,
					Name: fmt.Sprintf("%s-%s-%d", spec.Code, typ, i),
				})
				w.ASReg.Announce(a.Prefix(), a.Number)
				w.Geo.MapPrefix(a.Prefix(), spec.Code)
			}
		}
		mk(spec.EyeballASes, asn.TypeCableDSLISP, &c.Eyeball)
		mk(spec.ContentASes, asn.TypeContent, &c.Content)
		mk(spec.NSPASes, asn.TypeNSP, &c.NSP)
		mk(spec.EnterpriseASes, asn.TypeEnterprise, &c.Entpr)
		w.Countries = append(w.Countries, c)
	}
	_ = r
}

// typeOffset separates AS index spaces per type within a country block
// so /32s never collide.
func typeOffset(t asn.Type) int {
	switch t {
	case asn.TypeCableDSLISP:
		return 0
	case asn.TypeContent:
		return 4
	case asn.TypeNSP:
		return 8
	case asn.TypeEnterprise:
		return 12
	default:
		return 14
	}
}

// scaleCount scales a full-scale count down, with probabilistic rounding
// replaced by deterministic floor + minimum.
func scaleCount(full int, scale float64, min int) int {
	n := int(float64(full) * scale)
	if n < min {
		n = min
	}
	return n
}
