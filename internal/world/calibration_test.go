package world

import (
	"math"
	"testing"
)

// Calibration self-test: at a known scale, the generated populations
// must track the paper-derived full-scale counts in profiles.go. A
// drifting generator would silently invalidate every downstream shape
// comparison in EXPERIMENTS.md.
func TestPopulationCalibration(t *testing.T) {
	const deviceScale = 2e-3
	w := New(Config{Seed: 1, DeviceScale: deviceScale, AddrScale: 1e-6, ASScale: 0.02})

	responsive := map[string]int{}
	hitlistOnly := map[string]int{}
	for _, d := range w.Devices {
		switch d.Role() {
		case RoleResponsive:
			responsive[d.Profile.Name]++
		case RoleHitlistOnly:
			hitlistOnly[d.Profile.Name]++
		}
	}

	check := func(kind string, got map[string]int, name string, full int) {
		t.Helper()
		want := int(float64(full) * deviceScale)
		if want < 1 {
			want = 1
		}
		if got[name] != want {
			t.Errorf("%s %s: %d devices, want %d (full-scale %d)",
				kind, name, got[name], want, full)
		}
	}
	check("responsive", responsive, "fritzbox", 257195)
	check("responsive", responsive, "fritz-repeater", 14751)
	check("responsive", responsive, "raspbian", 4765)
	check("responsive", responsive, "ubuntu-exposed", 28522)
	check("responsive", responsive, "mqtt-enduser", 4316)
	check("responsive", responsive, "coap-castdevice", 2967)
	check("hitlist", hitlistOnly, "dlink-infra", 46548)
	check("hitlist", hitlistOnly, "ubuntu-server", 392207)
	check("hitlist", hitlistOnly, "cdn-edge", 310000)
}

// The profile catalog's full-scale totals must keep tracking the
// paper's headline numbers; this pins them against accidental edits.
func TestCatalogHeadlineTotals(t *testing.T) {
	var respTotal, sshResp, sshHit int
	for _, p := range allProfiles() {
		respTotal += p.CountResponsive
		if p.SSH != nil {
			sshResp += p.CountResponsive
			sshHit += p.CountHitlistOnly
		}
	}
	// NTP-side SSH keys: paper 73 923.
	if math.Abs(float64(sshResp-73923)) > 2500 {
		t.Errorf("responsive SSH population %d drifted from 73 923", sshResp)
	}
	// Hitlist SSH keys: paper 852 760.
	if math.Abs(float64(sshHit-852760)) > 30000 {
		t.Errorf("hitlist SSH population %d drifted from 852 760", sshHit)
	}
	// Total responsive population is dominated by FRITZ (≈284k overall
	// consumer finds + servers + shared-key gateways ≈ 470k).
	if respTotal < 350000 || respTotal > 600000 {
		t.Errorf("total responsive population %d outside plausible band", respTotal)
	}
}

// The MAC vendor table must keep AVM on top by a wide margin (Table 4's
// headline deviation from R&L).
func TestVendorMassCalibration(t *testing.T) {
	masses := map[string]int{}
	for _, p := range allProfiles() {
		if p.HasUniversalMAC && p.Vendor != "" {
			masses[p.Vendor] += p.CountResponsive + p.CountAddrOnly
		}
	}
	var avm, biggestOther int
	for vendor, mass := range masses {
		if len(vendor) >= 3 && vendor[:3] == "AVM" {
			avm += mass
		} else if mass > biggestOther {
			biggestOther = mass
		}
	}
	if avm < 3*biggestOther {
		t.Errorf("AVM mass %d should dominate the next vendor %d", avm, biggestOther)
	}
}
