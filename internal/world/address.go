package world

import (
	"net/netip"
	"time"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/rng"
)

// Address derivation is stateless and deterministic: a device's address
// at any instant is a pure function of (world seed, device, epoch). The
// epoch index advances with the device's churn period, so dynamic
// devices renumber over the collection window while servers stay put.

// EpochAt returns the device's address-epoch index at the given time.
// Static deployments (a single prefix epoch) are pinned to epoch 0 so
// they never renumber, regardless of how far the clock runs.
func (d *Device) EpochAt(now time.Time, start time.Time) int64 {
	if d.Profile.PrefixEpochs <= 1 {
		return 0
	}
	dt := now.Sub(start) + d.phase
	if dt < 0 {
		dt = 0
	}
	return int64(dt / d.epochLen)
}

// AddrAt computes the device's global address during the given epoch.
func (w *World) AddrAt(d *Device, epoch int64) netip.Addr {
	h := rng.New(w.Cfg.Seed ^ 0xadd7 ^ uint64(d.ID)*0x9e3779b97f4a7c15 ^ uint64(epoch)*0xbf58476d1ce4e5b9)

	// Network part: AS /32 + customer /48 + /56 subnet + /64 subnet.
	// Eyeball customers renumber into a fresh /48 slot per epoch;
	// static deployments always land in the slot for epoch 0 (the
	// derivation stream already mixes the epoch, so recompute with a
	// pinned stream for stability).
	var nh *rng.Stream
	if d.Profile.PrefixEpochs > 1 {
		nh = h
	} else {
		nh = rng.New(w.Cfg.Seed ^ 0xadd7 ^ uint64(d.ID)*0x9e3779b97f4a7c15)
	}
	cust := nh.Uint64n(uint64(d.AS.Cust48Pool))
	subnet56 := nh.Uint64n(4) // a handful of /56s per customer
	subnet64 := nh.Uint64n(4) // and LANs per /56
	hi := uint64(d.AS.Hi32)<<32 | cust<<16 | subnet56<<8 | subnet64

	// Interface identifier per addressing mode.
	var iid uint64
	switch d.Profile.AddrMode {
	case AddrEUI64:
		if d.HasMAC {
			iid = ipv6x.EmbedMAC(d.MAC)
		} else {
			// Locally administered randomised MAC, fresh per epoch.
			var m ipv6x.MAC
			h.Bytes(m[:])
			m[0] = m[0]&^0x01 | 0x02 // unicast, locally administered
			iid = ipv6x.EmbedMAC(m)
		}
	case AddrPrivacy:
		for iid == 0 {
			iid = h.Uint64()
		}
	case AddrStructuredLastByte:
		iid = 1 + h.Uint64n(254)
	case AddrStructuredTwoBytes:
		iid = 0x100 + h.Uint64n(0xfe00)
	case AddrLowEntropy:
		// Serial-derived identifiers: half the population repeats one
		// byte (entropy ≈ 0.5 bits), half mixes three values (1.5
		// bits), populating both of Figure 1's low-entropy bins.
		b := byte(1 + h.Uint64n(255))
		c := byte(h.Uint64n(256))
		if d.ID%2 == 0 {
			for i := 0; i < 7; i++ {
				iid = iid<<8 | uint64(b)
			}
			iid = iid<<8 | uint64(c)
		} else {
			e := byte(h.Uint64n(256))
			pattern := [8]byte{b, b, b, b, c, c, e, e}
			for _, v := range pattern {
				iid = iid<<8 | uint64(v)
			}
		}
	}
	return ipv6x.FromParts(hi, iid)
}

// CurrentAddr returns the device's address now, registering reachable
// devices on the fabric and withdrawing their previous address when the
// epoch rolled over (dynamic-IP churn: scans that arrive later find the
// old address unrouted and the same device at a new one). It is safe
// for concurrent use.
func (w *World) CurrentAddr(d *Device, now time.Time) netip.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	epoch := d.EpochAt(now, w.Cfg.Start)
	if epoch == d.lastEpoch {
		return d.lastAddr
	}
	addr := w.AddrAt(d, epoch)
	if d.host != nil {
		if d.lastEpoch >= 0 && d.lastAddr.IsValid() {
			w.fabric.Unregister(d.lastAddr)
		}
		w.fabric.Register(addr, d.host)
	}
	d.lastEpoch = epoch
	d.lastAddr = addr
	return addr
}

// RegisterStatic places every reachable static device on the fabric at
// its epoch-0 address. Dynamic reachable devices are registered lazily
// through CurrentAddr as they sync; static hitlist-only deployments must
// exist up front for the hitlist scan to find them.
func (w *World) RegisterStatic() {
	for _, d := range w.reachable {
		if d.host == nil || d.Profile.PrefixEpochs > 1 {
			continue
		}
		w.CurrentAddr(d, w.Cfg.Start)
	}
}

// RegisterAllAt places every reachable device — static and dynamic — on
// the fabric at its address as of t. Standalone scans of saved target
// lists use this to reconstruct one instant of the world; addresses the
// devices held in earlier epochs stay dark (the §6 staleness).
func (w *World) RegisterAllAt(t time.Time) {
	for _, d := range w.reachable {
		if d.host == nil {
			continue
		}
		w.CurrentAddr(d, t)
	}
}
