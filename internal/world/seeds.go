package world

import (
	"net/netip"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/rng"
)

// SeedCandidate is one address the hitlist's DNS/CT/traceroute-style
// sources would surface, with the source kind for diagnostics.
type SeedCandidate struct {
	Addr   netip.Addr
	Source string // "dns", "ct", "traceroute", "alias"
	Device *Device
}

// HitlistSeeds enumerates the device-backed seed candidates as of the
// world clock's current time:
//
//   - hitlist-only deployments (servers, infrastructure, CDN edges) are
//     always visible — that is what defines them;
//   - responsive NTP devices appear with their profile's DNSVisible
//     probability (MyFRITZ dyndns names, server DNS records). Dynamic
//     devices contribute their *current* address — dyndns entries track
//     renumbering, which is how consumer CPE ends up scannable from a
//     hitlist at all.
//
// Reachable seed devices are registered on the fabric at the returned
// address. The hitlist builder adds aliased CDN expansion and the
// synthetic stale mass on top of these.
func (w *World) HitlistSeeds(r *rng.Stream) []SeedCandidate {
	now := w.clock.Now()
	var out []SeedCandidate
	for _, d := range w.reachable {
		switch d.role {
		case RoleHitlistOnly:
			src := "dns"
			if d.Profile.Name == "core-router" {
				src = "traceroute"
			}
			out = append(out, SeedCandidate{Addr: w.CurrentAddr(d, now), Source: src, Device: d})
		case RoleResponsive:
			if d.Profile.DNSVisible > 0 && r.Bool(d.Profile.DNSVisible) {
				out = append(out, SeedCandidate{Addr: w.CurrentAddr(d, now), Source: "dns", Device: d})
			}
		}
	}
	return out
}

// AliasAddrs returns n sample addresses in the device's /64 and binds
// the device's host to the whole /64 — the aliased-prefix behaviour of
// CDN front ends, where every address in the block answers.
func (w *World) AliasAddrs(d *Device, n int) []netip.Addr {
	base := w.AddrAt(d, 0)
	hi, _ := ipv6x.Parts(base)
	if d.host != nil {
		w.fabric.RegisterPrefix(netip.PrefixFrom(base, 64), d.host)
	}
	h := rng.New(w.Cfg.Seed ^ 0xa11a5 ^ uint64(d.ID))
	out := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ipv6x.FromParts(hi, h.Uint64()))
	}
	return out
}

// RandomUnroutedAddr synthesises an address inside a random announced AS
// that no host occupies — the stale-DNS mass that makes the full hitlist
// two orders of magnitude larger than its responsive subset.
func (w *World) RandomUnroutedAddr(r *rng.Stream) netip.Addr {
	c := w.Countries[r.Intn(len(w.Countries))]
	lists := [][]*AS{c.Eyeball, c.Content, c.NSP, c.Entpr}
	lst := lists[r.Intn(len(lists))]
	if len(lst) == 0 {
		lst = c.Content
	}
	a := lst[r.Intn(len(lst))]
	hi := uint64(a.Hi32)<<32 | r.Uint64n(uint64(a.Cust48Pool))<<16 | r.Uint64n(256)
	return ipv6x.FromParts(hi, r.Uint64())
}
