package world

import (
	"fmt"
	"net"
	"time"

	"ntpscan/internal/netsim"
	"ntpscan/internal/proto/amqpx"
	"ntpscan/internal/proto/coapx"
	"ntpscan/internal/proto/httpx"
	"ntpscan/internal/proto/mqttx"
	"ntpscan/internal/proto/sshx"
	"ntpscan/internal/rng"
	"ntpscan/internal/tlsx"
)

// Well-known ports the scan modules probe (the paper's §4.1 list).
const (
	PortHTTP  = 80
	PortHTTPS = 443
	PortSSH   = 22
	PortMQTT  = 1883
	PortMQTTS = 8883
	PortAMQP  = 5672
	PortAMQPS = 5671
	PortCoAP  = 5683
)

// Certificate returns the device's TLS certificate. Devices sharing a
// reuse-pool key present bit-identical certificates (the container-image
// pathology of §6); all others carry unique serials.
func (w *World) Certificate(d *Device) *tlsx.Certificate {
	p := d.Profile
	subject := certSubject(d)
	serial := d.CertSerial
	if d.KeySlot >= 0 {
		// Reused identity: the cert is baked into the image.
		serial = uint64(d.KeySlot)*0x100000001b3 + 0xcafe
		subject = fmt.Sprintf("%s.local", shortVendor(p.Name))
	}
	issuer := subject
	if !p.SelfSigned {
		issuer = "R11 Intermediate CA"
	}
	// Validity derived from the serial so identical certs agree.
	nb := w.Cfg.Start.Add(-time.Duration(serial%720) * 24 * time.Hour)
	return &tlsx.Certificate{
		Subject:    subject,
		Issuer:     issuer,
		SerialNum:  serial,
		NotBefore:  nb,
		NotAfter:   nb.Add(825 * 24 * time.Hour),
		SelfSigned: p.SelfSigned,
		Key:        tlsx.KeyID(d.KeyID),
	}
}

func certSubject(d *Device) string {
	switch d.Profile.Name {
	case "fritzbox", "fritz-repeater", "fritz-powerline":
		return fmt.Sprintf("fritz-%x.myfritz.net", uint32(d.CertSerial))
	default:
		return fmt.Sprintf("host-%x.%s.example", uint32(d.CertSerial), shortVendor(d.Profile.Name))
	}
}

// HostKey returns the device's SSH host key.
func (w *World) HostKey(d *Device) sshx.HostKey {
	return sshx.HostKey{Type: "ssh-ed25519", Blob: d.KeyID[:]}
}

// SSHServerID renders the device's identification string, appending its
// patch revision for Debian-style banners.
func (w *World) SSHServerID(d *Device) string {
	s := d.Profile.SSH
	if s == nil {
		return ""
	}
	if s.NoPatch {
		return s.IDBase
	}
	return fmt.Sprintf("%s%d", s.IDBase, d.PatchRev)
}

// PageTitle returns the device's HTML title.
func (w *World) PageTitle(d *Device) string {
	p := d.Profile
	if len(p.TitleChoices) > 0 {
		r := rng.New(w.Cfg.Seed ^ 0x7469746c65 ^ uint64(d.ID))
		weights := make([]float64, len(p.TitleChoices))
		for i, t := range p.TitleChoices {
			weights[i] = t.W
		}
		t := p.TitleChoices[r.WeightedIndex(weights)].Title
		if t == "unique" {
			return fmt.Sprintf("site-%08x and friends", uint32(d.CertSerial))
		}
		return t
	}
	if p.TitleNoise {
		// Model-number variants stay within the 0.25 Levenshtein
		// threshold of each other, so they cluster into one group.
		models := []string{"7590", "7490", "7530", "6660", "5590", "7583"}
		r := rng.New(w.Cfg.Seed ^ 0x7469746c65 ^ uint64(d.ID))
		return fmt.Sprintf("%s %s", p.HTTPTitle, models[r.Intn(len(models))])
	}
	return p.HTTPTitle
}

// buildHost assembles the netsim host for a reachable device.
func (w *World) buildHost(d *Device) *netsim.Host {
	p := d.Profile
	h := netsim.NewHost(p.Name)
	h.Filtered = p.Filtered

	httpOpts := httpx.ServerOptions{
		Title:          w.PageTitle(d),
		StatusCode:     p.HTTPStatus,
		RequireHost:    p.RequireHost,
		HostErrorTitle: p.HostErrTitle,
		ServerHeader:   serverHeader(p),
	}
	cert := w.Certificate(d)
	tlsCfg := tlsx.ServerConfig{Certificate: cert, RequireSNI: p.RequireSNI}

	if p.HasService(SvcHTTP) {
		h.HandleTCP(PortHTTP, httpx.Handler(httpOpts))
	}
	if p.HasService(SvcHTTPS) && (d.TLSEnabled || p.RequireSNI) {
		h.HandleTCP(PortHTTPS, wrapTLS(tlsCfg, func(conn net.Conn) {
			httpx.ServeConn(conn, httpOpts)
		}))
	}
	if p.HasService(SvcSSH) {
		sshOpts := sshx.ServerOptions{ID: w.SSHServerID(d), HostKey: w.HostKey(d)}
		h.HandleTCP(PortSSH, sshx.Handler(sshOpts))
	}
	if p.HasService(SvcMQTT) {
		broker := mqttx.BrokerOptions{RequireAuth: d.AuthOn}
		h.HandleTCP(PortMQTT, mqttx.Handler(broker))
		if p.HasService(SvcMQTTS) && d.TLSEnabled {
			h.HandleTCP(PortMQTTS, wrapTLS(tlsCfg, func(conn net.Conn) {
				mqttx.ServeConn(conn, broker)
			}))
		}
	}
	if p.HasService(SvcAMQP) {
		broker := amqpx.BrokerOptions{Product: "RabbitMQ", RequireAuth: d.AuthOn}
		h.HandleTCP(PortAMQP, amqpx.Handler(broker))
		if p.HasService(SvcAMQPS) && d.TLSEnabled {
			h.HandleTCP(PortAMQPS, wrapTLS(tlsCfg, func(conn net.Conn) {
				amqpx.ServeConn(conn, broker)
			}))
		}
	}
	if p.HasService(SvcCoAP) {
		h.HandleUDP(PortCoAP, coapx.Handler(coapx.DeviceOptions{Resources: p.CoAPResources}))
	}
	return h
}

// emptyHost is a routed machine with all ports closed (core routers).
func (w *World) emptyHost(d *Device) *netsim.Host {
	h := netsim.NewHost(d.Profile.Name)
	h.Filtered = d.Profile.Filtered
	return h
}

// wrapTLS runs the tlsx server handshake and hands the wrapped stream to
// next; handshake failures close the connection (the scanner observes
// the alert).
func wrapTLS(cfg tlsx.ServerConfig, next func(net.Conn)) netsim.StreamHandler {
	return func(conn net.Conn) {
		tc, err := tlsx.Server(conn, cfg)
		if err != nil {
			conn.Close()
			return
		}
		next(tc)
	}
}

func serverHeader(p *Profile) string {
	switch {
	case p.Name == "fritzbox" || p.Name == "fritz-repeater" || p.Name == "fritz-powerline":
		return ""
	case p.Name == "cdn-edge":
		return "CloudFront"
	case p.Name == "generic-web":
		return "nginx"
	default:
		return ""
	}
}
