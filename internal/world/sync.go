package world

import (
	"net/netip"
	"time"

	"ntpscan/internal/rng"
)

// SampleClient draws one NTP client from a country's syncing population,
// weighted by per-profile sync frequency. It returns nil when the
// country has no NTP clients. Eager worlds only — lazy worlds draw an
// ID with SampleClientID and resolve it through a Materializer, which
// consumes exactly the same stream draws.
func (w *World) SampleClient(country string, r *rng.Stream) *Device {
	gid := w.SampleClientID(country, r)
	if gid < 0 {
		return nil
	}
	return w.Devices[gid]
}

// ResponsiveNTP returns every scan-reachable NTP-client device — the
// population whose capture the collection driver guarantees (their sync
// cadence over four weeks makes at least one hit on a vantage server
// overwhelmingly likely; see DESIGN.md). Available in lazy worlds: the
// reachable population is always resident.
func (w *World) ResponsiveNTP() []*Device {
	var out []*Device
	for _, d := range w.reachable {
		if d.role == RoleResponsive && d.Profile.NTPClient {
			out = append(out, d)
		}
	}
	return out
}

// VantageCountries returns the codes of countries hosting our capture
// servers, in spec order.
func (w *World) VantageCountries() []string {
	var out []string
	for _, c := range w.Countries {
		if c.Spec.Vantage {
			out = append(out, c.Spec.Code)
		}
	}
	return out
}

// Country returns the generated country by code.
func (w *World) Country(code string) (*Country, bool) {
	for _, c := range w.Countries {
		if c.Spec.Code == code {
			return c, true
		}
	}
	return nil, false
}

// AddrsDuring enumerates the distinct addresses a device holds across
// the window [start, start+dur), in epoch order. Used by tests and the
// R&L-era comparison run.
func (w *World) AddrsDuring(d *Device, start time.Time, dur time.Duration) []netip.Addr {
	first := d.EpochAt(start, w.Cfg.Start)
	last := d.EpochAt(start.Add(dur-time.Nanosecond), w.Cfg.Start)
	var out []netip.Addr
	for e := first; e <= last; e++ {
		out = append(out, w.AddrAt(d, e))
	}
	return out
}
