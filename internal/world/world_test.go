package world

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/proto/httpx"
	"ntpscan/internal/proto/sshx"
	"ntpscan/internal/rng"
)

// testCfg is small enough for fast tests but large enough that every
// profile is represented.
func testCfg(seed uint64) Config {
	return Config{Seed: seed, DeviceScale: 1e-3, AddrScale: 1e-6, ASScale: 0.02}
}

func findDevice(w *World, profile string, role Role) *Device {
	for _, d := range w.Devices {
		if d.Profile.Name == profile && d.role == role {
			return d
		}
	}
	return nil
}

func TestBuildDeterministic(t *testing.T) {
	a, b := New(testCfg(1)), New(testCfg(1))
	if len(a.Devices) != len(b.Devices) {
		t.Fatalf("device counts differ: %d vs %d", len(a.Devices), len(b.Devices))
	}
	for i := range a.Devices {
		da, db := a.Devices[i], b.Devices[i]
		if da.Profile.Name != db.Profile.Name || da.Country != db.Country ||
			da.AS.Number != db.AS.Number || da.KeyID != db.KeyID {
			t.Fatalf("device %d differs", i)
		}
		if a.AddrAt(da, 1) != b.AddrAt(db, 1) {
			t.Fatalf("device %d address differs", i)
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	a, b := New(testCfg(1)), New(testCfg(2))
	d0a := findDevice(a, "fritzbox", RoleResponsive)
	d0b := findDevice(b, "fritzbox", RoleResponsive)
	if d0a == nil || d0b == nil {
		t.Fatal("fritzbox missing")
	}
	if a.AddrAt(d0a, 0) == b.AddrAt(d0b, 0) {
		t.Fatal("different seeds produced identical addresses")
	}
}

func TestScalesApply(t *testing.T) {
	small := New(testCfg(1))
	big := New(Config{Seed: 1, DeviceScale: 2e-3, AddrScale: 1e-6, ASScale: 0.02})
	if len(big.Devices) <= len(small.Devices) {
		t.Fatalf("larger DeviceScale should yield more devices: %d vs %d",
			len(big.Devices), len(small.Devices))
	}
}

func TestEveryProfileRepresented(t *testing.T) {
	w := New(testCfg(1))
	seen := map[string]bool{}
	for _, d := range w.Devices {
		seen[d.Profile.Name] = true
	}
	for _, p := range allProfiles() {
		if p.CountResponsive+p.CountHitlistOnly+p.CountAddrOnly > 0 && !seen[p.Name] {
			t.Errorf("profile %q has no devices", p.Name)
		}
	}
}

func TestResponsiveLiveInVantageCountries(t *testing.T) {
	w := New(testCfg(1))
	vantage := map[string]bool{}
	for _, c := range w.VantageCountries() {
		vantage[c] = true
	}
	for _, d := range w.Devices {
		if d.role != RoleHitlistOnly && !vantage[d.Country] {
			t.Fatalf("%s device in non-vantage %s", d.Profile.Name, d.Country)
		}
	}
}

func TestFritzboxServesHTTP(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "fritzbox", RoleResponsive)
	if d == nil {
		t.Fatal("no fritzbox")
	}
	addr := w.CurrentAddr(d, w.Cfg.Start)
	conn, err := w.Fabric().DialTCP(context.Background(),
		netip.MustParseAddr("2001:db8::1"), netip.AddrPortFrom(addr, PortHTTP))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	resp, err := httpx.Get(conn, "", "/")
	if err != nil {
		t.Fatal(err)
	}
	title := resp.Title()
	if len(title) < 9 || title[:9] != "FRITZ!Box" {
		t.Fatalf("title = %q", title)
	}
}

func TestEUI64AddressCarriesVendorMAC(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "fritzbox", RoleResponsive)
	addr := w.AddrAt(d, 0)
	mac, ok := ipv6x.ExtractMAC(addr)
	if !ok {
		t.Fatalf("fritzbox address %v not EUI-64", addr)
	}
	if mac != d.MAC {
		t.Fatalf("MAC mismatch: %v vs %v", mac, d.MAC)
	}
	if !mac.Universal() {
		t.Fatal("vendor MAC should be universally administered")
	}
	vendor, ok := w.OUIReg.Lookup(mac)
	if !ok || vendor == "" {
		t.Fatalf("vendor lookup failed for %v", mac)
	}
}

func TestLocalEUIMACRotates(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "phone-generic", RoleAddrOnly)
	if d == nil {
		t.Fatal("no phone-generic")
	}
	a0, a1 := w.AddrAt(d, 0), w.AddrAt(d, 1)
	m0, ok0 := ipv6x.ExtractMAC(a0)
	m1, ok1 := ipv6x.ExtractMAC(a1)
	if !ok0 || !ok1 {
		t.Fatal("phone addresses should be EUI-64 shaped")
	}
	if m0 == m1 {
		t.Fatal("locally administered MAC should rotate per epoch")
	}
	if m0.Universal() || m1.Universal() {
		t.Fatal("randomised MACs must be locally administered")
	}
}

func TestAddrModesClassify(t *testing.T) {
	w := New(testCfg(1))
	cases := []struct {
		profile string
		role    Role
		classes []ipv6x.IIDClass
	}{
		{"phone-privacy", RoleAddrOnly, []ipv6x.IIDClass{ipv6x.IIDHighEntropy}},
		{"ubuntu-server", RoleHitlistOnly, []ipv6x.IIDClass{ipv6x.IIDLastByte}},
		{"dlink-infra", RoleHitlistOnly, []ipv6x.IIDClass{ipv6x.IIDLastByte, ipv6x.IIDLastTwoBytes}},
		{"ufi-hotspot", RoleResponsive, []ipv6x.IIDClass{ipv6x.IIDLowEntropy, ipv6x.IIDMediumEntropy}},
	}
	for _, c := range cases {
		d := findDevice(w, c.profile, c.role)
		if d == nil {
			t.Fatalf("no %s", c.profile)
		}
		got := ipv6x.ClassifyIID(w.AddrAt(d, 0))
		ok := false
		for _, want := range c.classes {
			if got == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s IID class = %v, want one of %v", c.profile, got, c.classes)
		}
	}
}

func TestChurnRenumbersAndWithdraws(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "fritzbox", RoleResponsive)
	first := w.CurrentAddr(d, w.Cfg.Start)
	// Advance beyond one epoch.
	later := w.Cfg.Start.Add(CollectionWindow/4 + CollectionWindow/8)
	second := w.CurrentAddr(d, later)
	if first == second {
		t.Fatal("dynamic device did not renumber")
	}
	if _, ok := w.Fabric().HostAt(first); ok {
		t.Fatal("old address still registered")
	}
	if _, ok := w.Fabric().HostAt(second); !ok {
		t.Fatal("new address not registered")
	}
	// Same /32 (the customer stays with the AS).
	if ipv6x.Prefix32(first) != ipv6x.Prefix32(second) {
		t.Fatal("renumbering moved the device out of its AS")
	}
}

func TestStaticDeviceNeverRenumbers(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "generic-web", RoleResponsive)
	a := w.CurrentAddr(d, w.Cfg.Start)
	b := w.CurrentAddr(d, w.Cfg.Start.Add(CollectionWindow-time.Hour))
	if a != b {
		t.Fatalf("static server renumbered: %v -> %v", a, b)
	}
}

func TestRegisterStatic(t *testing.T) {
	w := New(testCfg(1))
	w.RegisterStatic()
	d := findDevice(w, "dlink-infra", RoleHitlistOnly)
	if d == nil {
		t.Fatal("no dlink")
	}
	addr := w.AddrAt(d, 0)
	if _, ok := w.Fabric().HostAt(addr); !ok {
		t.Fatal("hitlist-only device not registered")
	}
}

func TestASRegistryResolvesDeviceAddrs(t *testing.T) {
	w := New(testCfg(1))
	for _, d := range w.Devices[:50] {
		addr := w.AddrAt(d, 0)
		asn, ok := w.ASReg.LookupASN(addr)
		if !ok || asn != d.AS.Number {
			t.Fatalf("ASN lookup for %s: got %d %v, want %d", d.Profile.Name, asn, ok, d.AS.Number)
		}
		country, ok := w.Geo.Locate(addr)
		if !ok || country != d.Country {
			t.Fatalf("geo lookup for %s: got %q, want %q", d.Profile.Name, country, d.Country)
		}
	}
}

func TestSampleClientCountryAndWeight(t *testing.T) {
	w := New(testCfg(1))
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		d := w.SampleClient("IN", r)
		if d == nil {
			t.Fatal("no client sampled")
		}
		if d.Country != "IN" {
			t.Fatalf("sampled %s device", d.Country)
		}
		if !d.Profile.NTPClient {
			t.Fatalf("non-NTP device %s sampled", d.Profile.Name)
		}
	}
	if w.SampleClient("XX", r) != nil {
		t.Fatal("unknown country sampled a device")
	}
}

func TestSyncMassIndiaDominates(t *testing.T) {
	w := New(testCfg(1))
	in := w.SyncMass("IN")
	nl := w.SyncMass("NL")
	if in <= nl*5 {
		t.Fatalf("India sync mass %v should dwarf NL %v", in, nl)
	}
}

func TestKeyReusePools(t *testing.T) {
	w := New(Config{Seed: 3, DeviceScale: 5e-3, AddrScale: 1e-6, ASScale: 0.02})
	keys := map[[16]byte]int{}
	devs := 0
	for _, d := range w.Devices {
		if d.Profile.Name == "ufi-hotspot" {
			keys[d.KeyID]++
			devs++
		}
	}
	if devs < 5 {
		t.Skipf("too few ufi devices (%d) at this scale", devs)
	}
	if len(keys) == devs {
		t.Fatal("no key reuse among ufi-hotspot devices")
	}
}

func TestReusedCertsShareFingerprint(t *testing.T) {
	w := New(Config{Seed: 3, DeviceScale: 5e-3, AddrScale: 1e-6, ASScale: 0.02})
	bySlot := map[int][]*Device{}
	for _, d := range w.Devices {
		if d.Profile.Name == "mqtt-enduser" && d.KeySlot >= 0 {
			bySlot[d.KeySlot] = append(bySlot[d.KeySlot], d)
		}
	}
	for slot, ds := range bySlot {
		if len(ds) < 2 {
			continue
		}
		fp0 := w.Certificate(ds[0]).Fingerprint()
		fp1 := w.Certificate(ds[1]).Fingerprint()
		if fp0 != fp1 {
			t.Fatalf("slot %d devices have different cert fingerprints", slot)
		}
		return
	}
	t.Skip("no shared slot at this scale")
}

func TestSSHBannerParsesBack(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "raspbian", RoleResponsive)
	if d == nil {
		t.Fatal("no raspbian")
	}
	id, err := sshx.ParseServerID(w.SSHServerID(d))
	if err != nil {
		t.Fatal(err)
	}
	if id.OS() != "Raspbian" {
		t.Fatalf("OS = %q", id.OS())
	}
	base, rev, ok := id.PatchLevel()
	if !ok || rev != d.PatchRev || base == "" {
		t.Fatalf("patch = %q %d %v, want rev %d", base, rev, ok, d.PatchRev)
	}
}

func TestHitlistSeeds(t *testing.T) {
	w := New(testCfg(1))
	seeds := w.HitlistSeeds(rng.New(5))
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	foundHitlistOnly := false
	for _, s := range seeds {
		if s.Device.role == RoleHitlistOnly {
			foundHitlistOnly = true
		}
		if s.Device.role == RoleAddrOnly {
			t.Fatal("address-only device in hitlist seeds")
		}
	}
	if !foundHitlistOnly {
		t.Fatal("hitlist-only devices missing from seeds")
	}
}

func TestAliasAddrsRegistered(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "cdn-edge", RoleHitlistOnly)
	if d == nil {
		t.Fatal("no cdn-edge")
	}
	aliases := w.AliasAddrs(d, 5)
	if len(aliases) != 5 {
		t.Fatalf("got %d aliases", len(aliases))
	}
	for _, a := range aliases {
		if _, ok := w.Fabric().HostAt(a); !ok {
			t.Fatalf("alias %v not registered", a)
		}
		if ipv6x.Prefix64(a) != ipv6x.Prefix64(w.AddrAt(d, 0)) {
			t.Fatalf("alias %v outside the device /64", a)
		}
	}
}

func TestRandomUnroutedAddrInAnnouncedSpace(t *testing.T) {
	w := New(testCfg(1))
	r := rng.New(7)
	for i := 0; i < 100; i++ {
		a := w.RandomUnroutedAddr(r)
		if _, ok := w.ASReg.LookupASN(a); !ok {
			t.Fatalf("unrouted addr %v outside announced space", a)
		}
	}
}

func TestCertificateProperties(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "fritzbox", RoleResponsive)
	cert := w.Certificate(d)
	if !cert.SelfSigned {
		t.Fatal("fritz cert should be self-signed")
	}
	if !cert.ValidAt(w.Cfg.Start) {
		t.Fatal("cert not valid at collection start")
	}
	srv := findDevice(w, "3cx-webclient", RoleResponsive)
	if srv == nil {
		srv = findDevice(w, "3cx-webclient", RoleHitlistOnly)
	}
	if srv != nil {
		if c := w.Certificate(srv); c.SelfSigned {
			t.Fatal("3CX cert should be CA-issued")
		}
	}
}

func TestPatchRevWithinRange(t *testing.T) {
	w := New(testCfg(1))
	for _, d := range w.Devices {
		if d.Profile.SSH == nil || d.Profile.SSH.NoPatch {
			continue
		}
		if d.PatchRev < 0 || d.PatchRev > d.Profile.SSH.MaxRev {
			t.Fatalf("%s patch rev %d out of range", d.Profile.Name, d.PatchRev)
		}
	}
}

func TestOutdatedBiasOrdering(t *testing.T) {
	// Raspbian (end-user, bias 2.2) must be more outdated on average
	// than debian-server (bias 0.7) — the Figure 2 mechanism.
	w := New(Config{Seed: 11, DeviceScale: 0.02, AddrScale: 1e-6, ASScale: 0.02})
	outdatedShare := func(name string) float64 {
		outdated, total := 0, 0
		for _, d := range w.Devices {
			if d.Profile.Name != name {
				continue
			}
			total++
			if d.PatchRev < d.Profile.SSH.MaxRev {
				outdated++
			}
		}
		if total == 0 {
			t.Fatalf("no %s devices", name)
		}
		return float64(outdated) / float64(total)
	}
	ras, deb := outdatedShare("raspbian"), outdatedShare("debian-server")
	if ras <= deb {
		t.Fatalf("raspbian outdated share %v should exceed debian %v", ras, deb)
	}
}

func TestAddrsDuring(t *testing.T) {
	w := New(testCfg(1))
	d := findDevice(w, "fritzbox", RoleResponsive)
	addrs := w.AddrsDuring(d, w.Cfg.Start, CollectionWindow)
	if len(addrs) < 2 {
		t.Fatalf("dynamic device saw %d addrs over the window", len(addrs))
	}
	s := findDevice(w, "generic-web", RoleResponsive)
	if got := w.AddrsDuring(s, w.Cfg.Start, CollectionWindow); len(got) != 1 {
		t.Fatalf("static device saw %d addrs", len(got))
	}
}

func TestNTPClientsAccessor(t *testing.T) {
	w := New(testCfg(1))
	devs := w.NTPClients("IN")
	if len(devs) == 0 {
		t.Fatal("no Indian NTP clients")
	}
	for _, d := range devs {
		if d.Country != "IN" || d.Role() != RoleAddrOnly {
			t.Fatalf("bad index entry: %s %v", d.Country, d.Role())
		}
	}
}

func TestASPrefixesDisjoint(t *testing.T) {
	w := New(testCfg(1))
	seen := map[uint32]uint32{} // hi32 -> ASN
	for _, c := range w.Countries {
		for _, lst := range [][]*AS{c.Eyeball, c.Content, c.NSP, c.Entpr} {
			for _, a := range lst {
				if prev, dup := seen[a.Hi32]; dup {
					t.Fatalf("AS %d and %d share /32 %08x", prev, a.Number, a.Hi32)
				}
				seen[a.Hi32] = a.Number
			}
		}
	}
}

func TestDeviceAddressesMostlyUnique(t *testing.T) {
	// Distinct devices must (essentially) never share an address at
	// epoch 0 — collisions would conflate scan findings.
	w := New(testCfg(1))
	seen := map[string]int{}
	dups := 0
	for _, d := range w.Devices {
		a := w.AddrAt(d, 0).String()
		if _, ok := seen[a]; ok {
			dups++
		}
		seen[a] = d.ID
	}
	if dups > len(w.Devices)/200 {
		t.Fatalf("%d address collisions among %d devices", dups, len(w.Devices))
	}
}
