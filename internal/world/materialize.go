package world

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"time"
	"unsafe"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/rng"
)

// Lazy materialization: device state is a pure function of
// (world seed, global device ID). The global ID space is partitioned
// into contiguous segments, one per (profile, role) block in catalog
// order, so the profile and role of any ID follow from a binary search
// and everything else — country, AS, /48 slot, MAC, keys, churn phase —
// is derived from a per-device stream seeded by the ID. Nothing about a
// device depends on any other device, which is what lets the world hold
// a population in the hundreds of millions without resident structs.
//
// The only whole-population work left at New is a counting pass that
// replays just the placement draws (country, AS) of every ID: it sizes
// the per-AS customer /48 pools and builds the per-country sync-
// sampling indexes. That pass allocates a few words per NTP client, not
// a Device, so memory grows with the index, two orders of magnitude
// below the eager build.

// deviceSalt seeds the per-device derivation stream.
const deviceSalt = 0x6d61747a // "matz"

// segment maps a contiguous global-ID range onto one (profile, role)
// block of the catalog.
type segment struct {
	p       *Profile
	role    Role
	base    int32
	n       int32
	weights []float64 // country placement weights, shared per shape
}

// weightKey identifies one shape of country-placement weights: profiles
// share a weight vector when region and role treatment agree.
type weightKey struct {
	region      Region
	vantageOnly bool
	linear      bool
}

// buildSegments lays out the global ID space in catalog order —
// responsive, hitlist-only, then address-only per profile — mirroring
// the order the eager build appends devices in.
func (w *World) buildSegments() {
	tab := map[weightKey][]float64{}
	var base int32
	for _, p := range allProfiles() {
		add := func(full int, scale float64, role Role) {
			if full <= 0 {
				return
			}
			n := int32(scaleCount(full, scale, 1))
			key := weightKey{
				region:      p.Region,
				vantageOnly: role != RoleHitlistOnly,
				linear:      role == RoleAddrOnly,
			}
			ws, ok := tab[key]
			if !ok {
				ws = w.countryWeights(key)
				tab[key] = ws
			}
			w.segments = append(w.segments, segment{p: p, role: role, base: base, n: n, weights: ws})
			base += n
		}
		add(p.CountResponsive, w.Cfg.DeviceScale, RoleResponsive)
		add(p.CountHitlistOnly, w.Cfg.DeviceScale, RoleHitlistOnly)
		add(p.CountAddrOnly, w.Cfg.AddrScale, RoleAddrOnly)
	}
	w.deviceTotal = base
}

// countryWeights precomputes the placement weight vector for one shape,
// replacing the per-device allocation the eager builder paid.
func (w *World) countryWeights(key weightKey) []float64 {
	weights := make([]float64, len(w.Countries))
	for i, c := range w.Countries {
		if key.vantageOnly && !c.Spec.Vantage {
			continue
		}
		weights[i] = regionWeight(key.region, c.Spec, key.linear)
	}
	return weights
}

// DeviceCount returns the number of devices in the world's ID space,
// materialized or not.
func (w *World) DeviceCount() int { return int(w.deviceTotal) }

// segmentOf locates the segment containing gid.
func (w *World) segmentOf(gid int32) *segment {
	idx := sort.Search(len(w.segments), func(i int) bool {
		return w.segments[i].base > gid
	}) - 1
	return &w.segments[idx]
}

// deviceStream reseeds r as the per-device derivation stream for gid.
func (w *World) deviceStream(gid int32, r *rng.Stream) {
	r.Reseed(w.Cfg.Seed ^ deviceSalt ^ uint64(gid)*0x9e3779b97f4a7c15)
}

// placeDevice draws the placement prefix of gid's derivation stream:
// the country and AS. The counting pass and materializeInto both start
// from exactly these draws, so placement observed while sizing pools is
// the placement a later materialization reproduces.
func (w *World) placeDevice(seg *segment, r *rng.Stream) (*Country, *AS) {
	idx := r.WeightedIndex(seg.weights)
	if idx < 0 {
		idx = 0
	}
	c := w.Countries[idx]
	return c, w.pickAS(c, seg.p.ASTyp, r)
}

// countPlacement replays every device's placement draws without
// materializing anything: it counts devices per AS (sizing the customer
// /48 pools) and builds the per-country sync-sampling and epoch-mass
// indexes over the address-only NTP-client population.
func (w *World) countPlacement() {
	var r rng.Stream
	for si := range w.segments {
		seg := &w.segments[si]
		for i := int32(0); i < seg.n; i++ {
			gid := seg.base + i
			w.deviceStream(gid, &r)
			c, a := w.placeDevice(seg, &r)
			a.deviceCount++
			if seg.role != RoleAddrOnly || !seg.p.NTPClient {
				continue
			}
			code := c.Spec.Code
			w.clientIDs[code] = append(w.clientIDs[code], gid)
			w.syncMass[code] += seg.p.SyncWeight
			w.cumSync[code] = append(w.cumSync[code], w.syncMass[code])
			epochs := seg.p.PrefixEpochs
			if epochs < 1 {
				epochs = 1
			}
			w.epochMass[code] += int64(epochs)
		}
	}
	// Size customer /48 pools now that per-AS device counts are known.
	for _, c := range w.Countries {
		for _, lst := range [][]*AS{c.Eyeball, c.Content, c.NSP, c.Entpr} {
			for _, a := range lst {
				a.Cust48Pool = cust48Pool(a, c.Spec.EyeballDensity)
			}
		}
	}
}

// materializeInto derives the full device state for gid into d, writing
// every field so an arena slot can be recycled without clearing. r is
// caller-provided scratch; its prior state is irrelevant.
func (w *World) materializeInto(gid int32, d *Device, r *rng.Stream) {
	seg := w.segmentOf(gid)
	p := seg.p
	w.deviceStream(gid, r)

	d.ID = int(gid)
	d.Profile = p
	d.role = seg.role
	d.Country, d.AS = func() (string, *AS) {
		c, a := w.placeDevice(seg, r)
		return c.Spec.Code, a
	}()

	// Hardware address. An empty Vendor with HasUniversalMAC models
	// manufacturers absent from the IEEE registry (the paper's
	// "unlisted" class): the unique bit is set but no OUI record
	// exists.
	d.MAC = ipv6x.MAC{}
	d.HasMAC = false
	if p.AddrMode == AddrEUI64 && p.HasUniversalMAC {
		var block [3]byte
		if p.Vendor != "" {
			ouis := w.OUIReg.OUIs(p.Vendor)
			block = ouis[r.Intn(len(ouis))]
		} else {
			r.Bytes(block[:])
			block[0] &^= 0x03 // universal unicast, but unregistered
		}
		var serial [3]byte
		r.Bytes(serial[:])
		d.MAC = ipv6x.MAC{block[0], block[1], block[2], serial[0], serial[1], serial[2]}
		d.HasMAC = true
	}

	// Identity and posture. Reuse pools shrink with DeviceScale so the
	// devices-per-key ratio stays at its full-scale calibration (~60
	// addresses per leaked image key, §6).
	d.CertSerial = r.Uint64()
	d.KeySlot = -1
	if p.KeyReuseProb > 0 && r.Bool(p.KeyReuseProb) && p.KeyReusePoolSize > 0 {
		pool := int(float64(p.KeyReusePoolSize) * w.Cfg.DeviceScale)
		if pool < 1 {
			pool = 1
		}
		// Zipf-skewed slot choice: the most widespread firmware image
		// accounts for a large share of the reuse population (the
		// paper's single key on 45 377 hosts).
		d.KeySlot = r.Zipf(pool, 1.4)
		d.KeyID = reuseKeyID(p.Name, d.KeySlot)
	} else {
		binary.LittleEndian.PutUint64(d.KeyID[:8], r.Uint64())
		binary.LittleEndian.PutUint64(d.KeyID[8:], r.Uint64())
	}
	d.TLSEnabled = r.Bool(p.TLSProb)
	d.AuthOn = r.Bool(p.AuthProb)
	d.PatchRev = 0
	if p.SSH != nil && !p.SSH.NoPatch {
		lag := int(r.ExpFloat64() * p.OutdatedBias * 1.2)
		d.PatchRev = p.SSH.MaxRev - lag
		if d.PatchRev < 0 {
			d.PatchRev = 0
		}
	}

	// Churn parameters.
	epochs := p.PrefixEpochs
	if epochs < 1 {
		epochs = 1
	}
	d.epochLen = CollectionWindow / time.Duration(epochs)
	d.phase = time.Duration(r.Uint64n(uint64(d.epochLen)))
	d.lastEpoch = -1
	d.lastAddr = netip.Addr{}
	d.host = nil
}

// buildReachable materializes the scan-reachable population — the only
// devices with mutable fabric state — in both eager and lazy worlds.
// Their count scales with DeviceScale, not AddrScale, so they stay
// resident at every rung of the scale ladder.
func (w *World) buildReachable() {
	var r rng.Stream
	for si := range w.segments {
		seg := &w.segments[si]
		if seg.role == RoleAddrOnly {
			continue
		}
		for i := int32(0); i < seg.n; i++ {
			d := &Device{}
			w.materializeInto(seg.base+i, d, &r)
			if len(seg.p.Services) > 0 {
				d.host = w.buildHost(d)
			} else {
				// Profile with no services (core routers): registered so
				// the address is routed, but every port is closed.
				d.host = w.emptyHost(d)
			}
			w.reachable = append(w.reachable, d)
		}
	}
}

// Reachable returns every scan-reachable device (responsive and
// hitlist-only roles) in global-ID order. The slice is shared and must
// not be mutated. It is populated in both eager and lazy worlds.
func (w *World) Reachable() []*Device { return w.reachable }

// ClientEpochMass returns the summed address-epoch count of a country's
// address-only NTP clients — the number of distinct addresses that
// population can expose over the collection window.
func (w *World) ClientEpochMass(country string) int64 { return w.epochMass[country] }

// SampleClientID draws one NTP-client device ID from a country's
// syncing population, weighted by per-profile sync frequency. It
// returns -1 (consuming nothing from r) when the country has no NTP
// clients. Resolve the ID through a Materializer, or through
// w.Devices[id] on an eager world.
func (w *World) SampleClientID(country string, r *rng.Stream) int32 {
	cum := w.cumSync[country]
	if len(cum) == 0 {
		return -1
	}
	target := r.Float64() * cum[len(cum)-1]
	idx := sort.SearchFloat64s(cum, target)
	if idx >= len(cum) {
		idx = len(cum) - 1
	}
	return w.clientIDs[country][idx]
}

// arenaSlot is one clock-ring entry of a Materializer.
type arenaSlot struct {
	gid int32
	ref bool
	dev Device
}

// slotBytes is the resident cost the arena accounts per slot.
var slotBytes = int(unsafe.Sizeof(arenaSlot{}))

// SlotBytes reports the per-slot resident cost arenas account against
// their budget. Exported so the observability conservation law
// (materializations - evictions == resident bytes / slot size) can be
// asserted outside this package.
func SlotBytes() int { return slotBytes }

// ArenaStats is the materialization activity of an arena since the last
// TakeStats call.
type ArenaStats struct {
	Materializations uint64
	Hits             uint64
	Evictions        uint64
}

// ArenaState is a Materializer checkpoint: together with the world
// configuration it reconstructs the arena bit-exactly, because slot
// contents are re-derivable from the IDs alone.
type ArenaState struct {
	Slots []int32 `json:"slots"` // resident gid per slot; -1 = empty
	Refs  []byte  `json:"refs"`  // clock reference bits, packed
	Hand  int     `json:"hand"`
}

// Materializer resolves global device IDs to materialized Devices
// through a bounded arena with clock (second-chance) eviction. Hot
// devices stay resident; cold ones are re-derived on demand. It is not
// safe for concurrent use — shard owners hold one each — and a returned
// *Device is valid only until the same arena materializes another
// device into its slot, so callers must not retain pointers across
// lookups beyond the arena's capacity.
type Materializer struct {
	w       *World
	index   map[int32]int32 // gid -> slot
	slots   []arenaSlot
	hand    int
	stats   ArenaStats
	scratch rng.Stream
}

// NewMaterializer builds an arena holding at most budgetBytes of
// materialized device state (minimum one slot).
func (w *World) NewMaterializer(budgetBytes int) *Materializer {
	capSlots := budgetBytes / slotBytes
	if capSlots < 1 {
		capSlots = 1
	}
	m := &Materializer{
		w:     w,
		index: make(map[int32]int32, capSlots),
		slots: make([]arenaSlot, capSlots),
	}
	for i := range m.slots {
		m.slots[i].gid = -1
	}
	return m
}

// Capacity returns the arena's slot count.
func (m *Materializer) Capacity() int { return len(m.slots) }

// ResidentBytes returns the bytes of device state currently resident.
func (m *Materializer) ResidentBytes() int { return len(m.index) * slotBytes }

// TakeStats returns the activity since the previous call and resets the
// deltas. Shard drains fold these into the obs counters in a
// deterministic order.
func (m *Materializer) TakeStats() ArenaStats {
	s := m.stats
	m.stats = ArenaStats{}
	return s
}

// Device materializes gid, from cache when resident.
func (m *Materializer) Device(gid int32) *Device {
	if si, ok := m.index[gid]; ok {
		s := &m.slots[si]
		s.ref = true
		m.stats.Hits++
		return &s.dev
	}
	// Clock sweep: clear reference bits until an unreferenced slot
	// turns up, then recycle it.
	var si int
	for {
		si = m.hand
		m.hand++
		if m.hand == len(m.slots) {
			m.hand = 0
		}
		if s := &m.slots[si]; s.gid >= 0 && s.ref {
			s.ref = false
			continue
		}
		break
	}
	s := &m.slots[si]
	if s.gid >= 0 {
		delete(m.index, s.gid)
		m.stats.Evictions++
	}
	s.gid = gid
	s.ref = true
	m.index[gid] = int32(si)
	m.stats.Materializations++
	m.w.materializeInto(gid, &s.dev, &m.scratch)
	return &s.dev
}

// Snapshot captures the arena's resident set and clock position.
// Pending stats deltas are not captured: drains fold them into the obs
// registry before a checkpoint is cut.
func (m *Materializer) Snapshot() *ArenaState {
	st := &ArenaState{
		Slots: make([]int32, len(m.slots)),
		Refs:  make([]byte, (len(m.slots)+7)/8),
		Hand:  m.hand,
	}
	for i := range m.slots {
		st.Slots[i] = m.slots[i].gid
		if m.slots[i].ref {
			st.Refs[i/8] |= 1 << (i % 8)
		}
	}
	return st
}

// Restore rebuilds the arena from a snapshot, re-deriving every
// resident device. The snapshot must come from an arena of the same
// capacity (i.e. the same byte budget).
func (m *Materializer) Restore(st *ArenaState) error {
	if len(st.Slots) != len(m.slots) {
		return fmt.Errorf("world: arena snapshot has %d slots, arena has %d (byte budget changed?)",
			len(st.Slots), len(m.slots))
	}
	if st.Hand < 0 || st.Hand >= len(m.slots) {
		return fmt.Errorf("world: arena snapshot hand %d out of range", st.Hand)
	}
	for gid := range m.index {
		delete(m.index, gid)
	}
	m.hand = st.Hand
	m.stats = ArenaStats{}
	for i := range m.slots {
		s := &m.slots[i]
		s.gid = st.Slots[i]
		s.ref = len(st.Refs) > i/8 && st.Refs[i/8]&(1<<(i%8)) != 0
		if s.gid >= 0 {
			if s.gid >= m.w.deviceTotal {
				return fmt.Errorf("world: arena snapshot gid %d outside population %d", s.gid, m.w.deviceTotal)
			}
			m.index[s.gid] = int32(i)
			m.w.materializeInto(s.gid, &s.dev, &m.scratch)
		}
	}
	return nil
}
