package world

import (
	"ntpscan/internal/asn"
	"ntpscan/internal/oui"
)

// AddrMode selects how a device forms its interface identifiers, which
// drives the Figure 1 IID-class distribution.
type AddrMode int

const (
	// AddrEUI64 embeds the device MAC (modified EUI-64).
	AddrEUI64 AddrMode = iota
	// AddrPrivacy uses fully random identifiers, re-randomised per
	// address epoch (RFC 4941 temporary addresses).
	AddrPrivacy
	// AddrStructuredLastByte uses ::1-style manual numbering.
	AddrStructuredLastByte
	// AddrStructuredTwoBytes uses identifiers with only the last two
	// bytes set.
	AddrStructuredTwoBytes
	// AddrLowEntropy uses repeated-byte patterns (embedded vendors that
	// derive IIDs from short serials).
	AddrLowEntropy
)

// ServiceKind enumerates the application services a profile can expose.
type ServiceKind int

const (
	SvcHTTP ServiceKind = iota
	SvcHTTPS
	SvcSSH
	SvcMQTT
	SvcMQTTS
	SvcAMQP
	SvcAMQPS
	SvcCoAP
	numServiceKinds
)

// Region tags bias a profile's population toward country groups.
type Region int

const (
	// RegionGlobal spreads by overall country population.
	RegionGlobal Region = iota
	// RegionEurope biases toward European countries (AVM's market).
	RegionEurope
	// RegionAsia biases toward the Asian mobile-heavy countries.
	RegionAsia
	// RegionAmericas biases toward the Americas.
	RegionAmericas
)

// SSHOS describes an SSH profile's operating system banner material.
type SSHOS struct {
	// ID is the full identification template, e.g.
	// "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u" — the patch revision is
	// appended from the device's PatchRev.
	IDBase string
	// MaxRev is the current (up-to-date) patch revision for the
	// release; devices carry revisions in [0, MaxRev].
	MaxRev int
	// NoPatch marks banners exposing no patch revision (FreeBSD-style
	// date suffixes are appended verbatim instead).
	NoPatch bool
}

// Profile is one device/deployment model. Counts are full-scale device
// populations calibrated against the paper's tables; the builder
// multiplies them by the configured scales.
type Profile struct {
	Name  string
	ASTyp asn.Type // the AS type this deployment predominantly lives in
	// Region biases country placement.
	Region Region

	// CountResponsive is the full-scale number of scan-reachable
	// devices of this profile in the NTP-visible population
	// (calibrated to the paper's "Our Data" columns).
	CountResponsive int
	// CountHitlistOnly is the additional full-scale population visible
	// only through hitlist-style sources (servers, infrastructure).
	CountHitlistOnly int
	// CountAddrOnly is the full-scale population of devices that only
	// contribute captured addresses (firewalled eyeball gear: phones,
	// speakers, TVs, non-exposed CPE). Scaled by AddrScale, not
	// DeviceScale.
	CountAddrOnly int

	// NTPClient devices synchronise against the pool, exposing their
	// addresses to capture servers.
	NTPClient bool
	// SyncWeight is the relative sync frequency (events per device per
	// logical day).
	SyncWeight float64
	// DNSVisible is the probability a device of this profile has a
	// DNS/CT footprint and therefore appears in hitlist seeds.
	DNSVisible float64

	// AddrMode selects IID construction; PrefixEpochs is how many
	// address epochs a device sees during the collection window
	// (dynamic prefixes; 1 = static).
	AddrMode     AddrMode
	PrefixEpochs int

	// HasUniversalMAC devices embed a globally unique MAC from Vendor's
	// OUI space; otherwise EUI-64-shaped devices use locally
	// administered randomised MACs.
	HasUniversalMAC bool
	Vendor          string // OUI vendor name (when HasUniversalMAC)

	// TitleChoices, when non-empty, draws each device's page title
	// from a weighted list instead of HTTPTitle (mixed hosting
	// populations: default pages, placeholders, panels).
	TitleChoices []WeightedTitle

	// Services and application-layer behaviour.
	Services     []ServiceKind
	Filtered     bool    // firewall drops probes to closed ports
	HTTPTitle    string  // page title; "" = titleless page
	TitleNoise   bool    // append a per-device version suffix to the title
	HTTPStatus   int     // response status (default 200)
	RequireHost  bool    // virtual-hosting front end (404 without Host)
	HostErrTitle string  // title of the no-Host error page
	RequireSNI   bool    // TLS fails without SNI (CDN behaviour)
	TLSProb      float64 // share of devices with the TLS variant enabled
	SelfSigned   bool    // certificate self-signed (consumer gear)

	SSH *SSHOS // nil = no SSH

	// MQTT/AMQP access control: probability that auth is enforced.
	AuthProb float64
	// KeyReuseProb is the chance a device draws its key/cert from a
	// small shared pool (container images, §6).
	KeyReuseProb float64
	// KeyReusePoolSize bounds the shared pool (distinct reused keys).
	KeyReusePoolSize int

	// CoAPResources advertised via /.well-known/core.
	CoAPResources []string

	// OutdatedBias skews PatchRev downward: 0 = uniform up-to-date,
	// larger = more outdated devices (end-user gear).
	OutdatedBias float64
}

// WeightedTitle is one entry of a TitleChoices list.
type WeightedTitle struct {
	Title string
	W     float64
}

// HasService reports whether the profile exposes k.
func (p *Profile) HasService(k ServiceKind) bool {
	for _, s := range p.Services {
		if s == k {
			return true
		}
	}
	return false
}

// Profiles returns the device catalog. Full-scale counts are calibrated
// so the measurement pipeline re-derives the paper's Tables 2/3 shapes;
// see DESIGN.md for the mapping.
func Profiles() []*Profile {
	return []*Profile{
		// --- Consumer CPE: the headline finding (§4.3.1). ---
		{
			Name: "fritzbox", ASTyp: asn.TypeCableDSLISP, Region: RegionEurope,
			CountResponsive: 257195, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 8, DNSVisible: 0.139, // MyFRITZ dyndns names
			AddrMode: AddrEUI64, PrefixEpochs: 4,
			HasUniversalMAC: true, Vendor: oui.VendorAVMMarketing,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "FRITZ!Box", TLSProb: 0.92, SelfSigned: true,
			Filtered: true, OutdatedBias: 1.5,
		},
		{
			Name: "fritz-repeater", ASTyp: asn.TypeCableDSLISP, Region: RegionEurope,
			CountResponsive: 14751, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 8, DNSVisible: 0.0005,
			AddrMode: AddrEUI64, PrefixEpochs: 4,
			HasUniversalMAC: true, Vendor: oui.VendorAVM,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "FRITZ!Repeater 6000", TLSProb: 0.9, SelfSigned: true,
			Filtered: true, OutdatedBias: 1.5,
		},
		{
			Name: "fritz-powerline", ASTyp: asn.TypeCableDSLISP, Region: RegionEurope,
			CountResponsive: 1480, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 8, DNSVisible: 0,
			AddrMode: AddrEUI64, PrefixEpochs: 4,
			HasUniversalMAC: true, Vendor: oui.VendorAVM,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "FRITZ!Powerline 1260", TLSProb: 0.9, SelfSigned: true,
			Filtered: true, OutdatedBias: 1.5,
		},
		{
			Name: "cisco-wap", ASTyp: asn.TypeCableDSLISP, Region: RegionAmericas,
			CountResponsive: 621, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 6, DNSVisible: 0,
			AddrMode: AddrEUI64, PrefixEpochs: 3,
			HasUniversalMAC: true, Vendor: oui.VendorCisco,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "WAP150 Wireless-AC/N Dual Radio Access Point with PoE",
			TLSProb:   0.85, SelfSigned: true, Filtered: true, OutdatedBias: 1.2,
		},
		{
			Name: "dlink-infra", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 46548,
			NTPClient: false, DNSVisible: 0.9,
			AddrMode: AddrStructuredTwoBytes, PrefixEpochs: 1,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "D-LINK", TLSProb: 0.75, SelfSigned: true, OutdatedBias: 1.0,
		},
		{
			Name: "gateway-ui", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountResponsive: 748, CountHitlistOnly: 486,
			NTPClient: true, SyncWeight: 5, DNSVisible: 0.25,
			AddrMode: AddrLowEntropy, PrefixEpochs: 3,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "Common UI", TLSProb: 0.8, SelfSigned: true,
			Filtered: true, OutdatedBias: 1.2,
		},
		{
			Name: "webinterface-cpe", ASTyp: asn.TypeCableDSLISP, Region: RegionEurope,
			CountResponsive: 651, CountHitlistOnly: 20,
			NTPClient: true, SyncWeight: 5, DNSVisible: 0.02,
			AddrMode: AddrEUI64, PrefixEpochs: 3,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "WebInterface", TLSProb: 0.8, SelfSigned: true,
			Filtered: true, OutdatedBias: 1.2,
		},
		{
			Name: "ufi-hotspot", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountResponsive: 2503, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 6, DNSVisible: 0,
			AddrMode: AddrLowEntropy, PrefixEpochs: 6,
			Services:     []ServiceKind{SvcHTTP},
			HTTPTitle:    "UFI配置管理-ZHXL_V2.0.0",
			KeyReuseProb: 0.9, KeyReusePoolSize: 40,
			Filtered: true, OutdatedBias: 1.8,
		},

		{
			// Consumer gateways shipped with baked-in firmware keys:
			// the §6 key-reuse population (91 773 NTP-sourced IPs on
			// 304 reused keys, 45 377 of them on a single key). Slot
			// assignment is Zipf-skewed, so one image dominates.
			Name: "gw-container", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountResponsive: 90000, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 5, DNSVisible: 0.002,
			AddrMode: AddrLowEntropy, PrefixEpochs: 4,
			Services: []ServiceKind{SvcHTTP, SvcHTTPS},
			TitleChoices: []WeightedTitle{
				{Title: "My Modem", W: 30},
				{Title: "Ms Portal", W: 28},
				{Title: "GAID - WIFI NG BAYAN", W: 20},
				{Title: "UFI-JZ_V3.0.0", W: 18},
				{Title: "unique", W: 4},
			},
			TLSProb: 0.85, SelfSigned: true,
			KeyReuseProb: 1.0, KeyReusePoolSize: 304,
			Filtered: true, OutdatedBias: 1.8,
		},

		// --- 3CX and hosting: hitlist-dominant deployments. ---
		{
			Name: "3cx-webclient", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 164, CountHitlistOnly: 16565,
			NTPClient: true, SyncWeight: 1, DNSVisible: 0.95,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services:  []ServiceKind{SvcHTTPS},
			HTTPTitle: "3CX Webclient", TLSProb: 1, OutdatedBias: 0.4,
		},
		{
			Name: "3cx-mgmt", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 322, CountHitlistOnly: 14253,
			NTPClient: true, SyncWeight: 1, DNSVisible: 0.95,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services:  []ServiceKind{SvcHTTPS},
			HTTPTitle: "3CX Phone System Management Console", TLSProb: 1, OutdatedBias: 0.4,
		},
		{
			Name: "hosting-placeholder", ASTyp: asn.TypeContent, Region: RegionEurope,
			CountResponsive: 0, CountHitlistOnly: 38270,
			NTPClient: false, DNSVisible: 0.98,
			AddrMode: AddrStructuredTwoBytes, PrefixEpochs: 1,
			Services:  []ServiceKind{SvcHTTP, SvcHTTPS},
			HTTPTitle: "Host Europe GmbH", TLSProb: 0.9, OutdatedBias: 0.3,
		},
		{
			Name: "vhost-frontend", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 41384,
			NTPClient: false, DNSVisible: 0.97,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services:    []ServiceKind{SvcHTTP, SvcHTTPS},
			RequireHost: true, HostErrTitle: "(IP) was not found",
			HTTPTitle: "hosted site", TLSProb: 0.9, OutdatedBias: 0.3,
		},
		{
			Name: "cdn-edge", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 310000,
			NTPClient: false, DNSVisible: 1,
			AddrMode: AddrStructuredTwoBytes, PrefixEpochs: 1,
			Services:   []ServiceKind{SvcHTTP, SvcHTTPS},
			RequireSNI: true, HTTPTitle: "", TLSProb: 1, OutdatedBias: 0,
		},
		{
			Name: "generic-web", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 7400, CountHitlistOnly: 395000,
			NTPClient: true, SyncWeight: 0.5, DNSVisible: 0.9,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services: []ServiceKind{SvcHTTP, SvcHTTPS},
			TitleChoices: []WeightedTitle{
				{Title: "", W: 34},
				{Title: "Apache2 Ubuntu Default Page: It works", W: 13},
				{Title: "Welcome to nginx!", W: 12},
				{Title: "Nothing Page", W: 7},
				{Title: "Plesk Obsidian 18.0.34", W: 3.4},
				{Title: "Index of /pub/", W: 2.4},
				{Title: "FASTPANEL2", W: 1.4},
				{Title: "Login - Join", W: 1.1},
				{Title: "Selamat, website telah aktif!", W: 1.0},
				{Title: "Domain Default page", W: 0.8},
				{Title: "Hier entsteht eine neue Webseite.", W: 0.6},
				{Title: "Home", W: 0.6},
				{Title: "unique", W: 23}, // expands to a per-device title
			},
			TLSProb:      0.7,
			KeyReuseProb: 0.02, KeyReusePoolSize: 400, OutdatedBias: 0.5,
		},

		// --- SSH populations (§4.3.2, Figure 2). ---
		{
			// Professionally managed Ubuntu fleet: hitlist territory.
			Name: "ubuntu-server", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 392207,
			NTPClient: false, DNSVisible: 0.85,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_9.6p1 Ubuntu-3ubuntu13.", MaxRev: 8},
			KeyReuseProb: 0.04, KeyReusePoolSize: 1200, OutdatedBias: 0.8,
		},
		{
			// End-user-operated Ubuntu boxes reachable from home
			// networks: the NTP-found population, less well patched
			// (Figure 2's per-source gap).
			Name: "ubuntu-exposed", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 28522, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 2, DNSVisible: 0.04,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 4,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_9.6p1 Ubuntu-3ubuntu13.", MaxRev: 8},
			KeyReuseProb: 0.03, KeyReusePoolSize: 300, OutdatedBias: 1.3,
		},
		{
			Name: "debian-server", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 180748,
			NTPClient: false, DNSVisible: 0.85,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u", MaxRev: 5},
			KeyReuseProb: 0.04, KeyReusePoolSize: 700, OutdatedBias: 0.8,
		},
		{
			Name: "debian-exposed", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 13830, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 2, DNSVisible: 0.04,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 4,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u", MaxRev: 5},
			KeyReuseProb: 0.03, KeyReusePoolSize: 200, OutdatedBias: 1.3,
		},
		{
			Name: "raspbian", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 4765, CountHitlistOnly: 620,
			NTPClient: true, SyncWeight: 4, DNSVisible: 0.01,
			AddrMode: AddrEUI64, PrefixEpochs: 4,
			HasUniversalMAC: true, Vendor: oui.VendorRaspberryPi,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_9.2p1 Raspbian-10+deb12u", MaxRev: 5},
			OutdatedBias: 2.9,
		},
		{
			Name: "freebsd-infra", ASTyp: asn.TypeNSP, Region: RegionGlobal,
			CountResponsive: 140, CountHitlistOnly: 13874,
			NTPClient: true, SyncWeight: 0.1, DNSVisible: 0.9,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_9.6 FreeBSD-20240701", NoPatch: true},
			OutdatedBias: 0.3,
		},
		{
			Name: "ssh-other", ASTyp: asn.TypeEnterprise, Region: RegionGlobal,
			CountResponsive: 26677, CountHitlistOnly: 258000,
			NTPClient: true, SyncWeight: 0.7, DNSVisible: 0.27,
			AddrMode: AddrStructuredTwoBytes, PrefixEpochs: 1,
			Services:     []ServiceKind{SvcSSH},
			SSH:          &SSHOS{IDBase: "SSH-2.0-OpenSSH_8.4p1", NoPatch: true},
			KeyReuseProb: 0.03, KeyReusePoolSize: 900, OutdatedBias: 0.9,
		},

		// --- IoT brokers (§4.4.2, Figure 3). ---
		{
			Name: "mqtt-enduser", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 4316, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 3, DNSVisible: 0.01,
			AddrMode: AddrPrivacy, PrefixEpochs: 3,
			Services: []ServiceKind{SvcMQTT, SvcMQTTS},
			TLSProb:  0.077, AuthProb: 0.45, SelfSigned: true,
			KeyReuseProb: 0.85, KeyReusePoolSize: 40, OutdatedBias: 1.8,
		},
		{
			Name: "mqtt-managed", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 48987,
			NTPClient: false, DNSVisible: 0.85,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services: []ServiceKind{SvcMQTT, SvcMQTTS},
			TLSProb:  0.021, AuthProb: 0.80,
			KeyReuseProb: 0.6, KeyReusePoolSize: 500, OutdatedBias: 0.4,
		},
		{
			Name: "amqp-enduser", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 1152, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 2, DNSVisible: 0.01,
			AddrMode: AddrPrivacy, PrefixEpochs: 3,
			Services: []ServiceKind{SvcAMQP, SvcAMQPS},
			TLSProb:  0.012, AuthProb: 0.90, SelfSigned: true, OutdatedBias: 1.4,
		},
		{
			Name: "amqp-managed", ASTyp: asn.TypeContent, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 3083,
			NTPClient: false, DNSVisible: 0.85,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services: []ServiceKind{SvcAMQP, SvcAMQPS},
			TLSProb:  0.036, AuthProb: 0.94, OutdatedBias: 0.4,
		},

		// --- CoAP devices (§4.3.3). ---
		{
			Name: "coap-castdevice", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountResponsive: 2967, CountHitlistOnly: 0,
			NTPClient: true, SyncWeight: 5, DNSVisible: 0,
			AddrMode: AddrPrivacy, PrefixEpochs: 2,
			Services:      []ServiceKind{SvcCoAP},
			CoAPResources: []string{"/castDeviceSearch"},
		},
		{
			Name: "coap-qlink", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountResponsive: 2088, CountHitlistOnly: 620,
			NTPClient: true, SyncWeight: 4, DNSVisible: 0.35,
			AddrMode: AddrLowEntropy, PrefixEpochs: 2,
			Services:      []ServiceKind{SvcCoAP},
			CoAPResources: []string{"/qlink/sta", "/qlink/config"},
		},
		{
			Name: "coap-efento", ASTyp: asn.TypeEnterprise, Region: RegionEurope,
			CountResponsive: 4, CountHitlistOnly: 55,
			NTPClient: true, SyncWeight: 1, DNSVisible: 0.8,
			AddrMode: AddrEUI64, PrefixEpochs: 1,
			Services:      []ServiceKind{SvcCoAP},
			CoAPResources: []string{"/efento/m", "/efento/i"},
		},
		{
			Name: "coap-nanoleaf", ASTyp: asn.TypeCableDSLISP, Region: RegionAmericas,
			CountResponsive: 1, CountHitlistOnly: 49,
			NTPClient: true, SyncWeight: 1, DNSVisible: 0.8,
			AddrMode: AddrEUI64, PrefixEpochs: 1,
			Services:      []ServiceKind{SvcCoAP},
			CoAPResources: []string{"/nanoleafapi"},
		},
		{
			Name: "coap-empty", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountResponsive: 21, CountHitlistOnly: 311,
			NTPClient: true, SyncWeight: 1, DNSVisible: 0.5,
			AddrMode: AddrPrivacy, PrefixEpochs: 2,
			Services:      []ServiceKind{SvcCoAP},
			CoAPResources: nil,
		},
		{
			Name: "coap-other", ASTyp: asn.TypeEnterprise, Region: RegionGlobal,
			CountResponsive: 15, CountHitlistOnly: 34,
			NTPClient: true, SyncWeight: 1, DNSVisible: 0.6,
			AddrMode: AddrPrivacy, PrefixEpochs: 2,
			Services:      []ServiceKind{SvcCoAP},
			CoAPResources: []string{"/maha", "/.well-known/core"},
		},

		// --- Address-only eyeball devices: no reachable services, but
		// they dominate the NTP-sourced address volume, the EUI-64
		// vendor table, and the low hit rate. ---
		{
			Name: "phone-samsung", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 186000, NTPClient: true, SyncWeight: 10,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorSamsung,
			Filtered: true,
		},
		{
			Name: "phone-vivo", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 110000, NTPClient: true, SyncWeight: 10,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorVivo,
			Filtered: true,
		},
		{
			Name: "phone-oppo", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 52000, NTPClient: true, SyncWeight: 10,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorOppo,
			Filtered: true,
		},
		{
			Name: "phone-xiaomi", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 27000, NTPClient: true, SyncWeight: 10,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorXiaomi,
			Filtered: true,
		},
		{
			Name: "phone-generic", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 25000000, NTPClient: true, SyncWeight: 10,
			// Randomised locally administered MACs: EUI-64 shaped but
			// not globally unique — the dominant class in Appendix B.
			AddrMode: AddrEUI64, PrefixEpochs: 30,
			HasUniversalMAC: false,
			Filtered:        true,
		},
		{
			Name: "phone-privacy", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountAddrOnly: 70000000, NTPClient: true, SyncWeight: 10,
			AddrMode: AddrPrivacy, PrefixEpochs: 30,
			Filtered: true,
		},
		{
			Name: "echo-speaker", ASTyp: asn.TypeCableDSLISP, Region: RegionAmericas,
			CountAddrOnly: 1120000, NTPClient: true, SyncWeight: 12,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorAmazon,
			Filtered: true,
		},
		{
			Name: "sonos-speaker", ASTyp: asn.TypeCableDSLISP, Region: RegionEurope,
			CountAddrOnly: 144000, NTPClient: true, SyncWeight: 12,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorSonos,
			Filtered: true,
		},
		{
			Name: "tv-haier", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 48000, NTPClient: true, SyncWeight: 6,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: oui.VendorHaierMM,
			Filtered: true,
		},
		{
			Name: "fritz-unreachable", ASTyp: asn.TypeCableDSLISP, Region: RegionEurope,
			// FRITZ devices without remote access enabled: sourced, not
			// scannable; they dominate the AVM MAC counts of Table 4.
			CountAddrOnly: 5750000, NTPClient: true, SyncWeight: 8,
			AddrMode: AddrEUI64, PrefixEpochs: 3,
			HasUniversalMAC: true, Vendor: oui.VendorAVMMarketing,
			Filtered: true,
		},

		{
			// Gateways numbered from short serials or config tools:
			// the structured and low-entropy slices of Figure 1's
			// NTP-sourced distribution.
			Name: "gw-structured", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountAddrOnly: 60000000, NTPClient: true, SyncWeight: 4,
			AddrMode: AddrStructuredTwoBytes, PrefixEpochs: 2,
			Filtered: true,
		},
		{
			Name: "gw-lastbyte", ASTyp: asn.TypeCableDSLISP, Region: RegionGlobal,
			CountAddrOnly: 15000000, NTPClient: true, SyncWeight: 3,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Filtered: true,
		},
		{
			Name: "gw-serial", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 40000000, NTPClient: true, SyncWeight: 4,
			AddrMode: AddrLowEntropy, PrefixEpochs: 2,
			Filtered: true,
		},
		{
			// Manufacturers shipping universal MACs that never made it
			// into the IEEE registry — the "(Unlisted)" row of Table 4
			// (R&L's top entry).
			Name: "iot-unlisted", ASTyp: asn.TypeCableDSLISP, Region: RegionAsia,
			CountAddrOnly: 2000000, NTPClient: true, SyncWeight: 5,
			AddrMode: AddrEUI64, PrefixEpochs: 2,
			HasUniversalMAC: true, Vendor: "",
			Filtered: true,
		},

		// --- Routers/infrastructure only in traceroute-style seeds. ---
		{
			Name: "core-router", ASTyp: asn.TypeNSP, Region: RegionGlobal,
			CountResponsive: 0, CountHitlistOnly: 120000,
			NTPClient: false, DNSVisible: 0.35,
			AddrMode: AddrStructuredLastByte, PrefixEpochs: 1,
			Services: nil, // no app-layer services: responds to nothing we scan
		},
	}
}
