package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -5, 7}, -1},
	}
	for _, c := range cases {
		if got := Median(c.in); !almost(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated input: %v", in)
	}
}

func TestMedianInts(t *testing.T) {
	if got := MedianInts([]int{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("MedianInts = %v, want 2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 30); !almost(got, 3) {
		t.Fatalf("Percentile(30) = %v, want 3", got)
	}
}

func TestMeanAndProportion(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Proportion(1, 4); !almost(got, 0.25) {
		t.Fatalf("Proportion = %v", got)
	}
	if got := Proportion(1, 0); got != 0 {
		t.Fatalf("Proportion(_,0) = %v", got)
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter[string]()
	c.Add("a")
	c.Add("b")
	c.AddN("a", 2)
	if c.Count("a") != 3 || c.Count("b") != 1 || c.Count("zzz") != 0 {
		t.Fatalf("counts wrong: a=%d b=%d", c.Count("a"), c.Count("b"))
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Distinct() != 2 {
		t.Fatalf("Distinct = %d", c.Distinct())
	}
}

func TestCounterSortedDeterministic(t *testing.T) {
	c := NewCounter[string]()
	c.AddN("x", 5)
	c.AddN("a", 5)
	c.AddN("m", 9)
	got := c.Sorted()
	if got[0].Key != "m" || got[1].Key != "a" || got[2].Key != "x" {
		t.Fatalf("Sorted order wrong: %v", got)
	}
}

func TestCounterTopAndKeys(t *testing.T) {
	c := NewCounter[int]()
	for i := 0; i < 10; i++ {
		c.AddN(i, i)
	}
	top := c.Top(3)
	if len(top) != 3 || top[0].Key != 9 || top[1].Key != 8 || top[2].Key != 7 {
		t.Fatalf("Top wrong: %v", top)
	}
	keys := c.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("Keys not sorted: %v", keys)
	}
	if got := c.Top(100); len(got) != 10 {
		t.Fatalf("Top over-length = %d", len(got))
	}
}

func TestCounterMerge(t *testing.T) {
	a, b := NewCounter[string](), NewCounter[string]()
	a.AddN("x", 1)
	b.AddN("x", 2)
	b.AddN("y", 3)
	a.Merge(b)
	if a.Count("x") != 3 || a.Count("y") != 3 || a.Total() != 6 {
		t.Fatalf("merge wrong: %v %v %v", a.Count("x"), a.Count("y"), a.Total())
	}
}

func TestCounterCountValues(t *testing.T) {
	c := NewCounter[string]()
	c.AddN("a", 3)
	c.AddN("b", 1)
	c.AddN("c", 2)
	vs := c.CountValues()
	want := []int{1, 2, 3}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("CountValues = %v", vs)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Observe(v)
	}
	// -3 clamps into bin 0, 42 clamps into bin 4.
	want := []int{3, 1, 1, 0, 2}
	for i := range want {
		if h.Bins[i] != want[i] {
			t.Fatalf("Bins = %v, want %v", h.Bins, want)
		}
	}
	props := h.Proportions()
	var sum float64
	for _, p := range props {
		sum += p
	}
	if !almost(sum, 1) {
		t.Fatalf("proportions sum to %v", sum)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, p := range h.Proportions() {
		if p != 0 {
			t.Fatal("empty histogram should have zero proportions")
		}
	}
}

func TestHistogramDegenerateParams(t *testing.T) {
	h := NewHistogram(5, 5, 0)
	h.Observe(5)
	if h.N != 1 || len(h.Bins) != 1 {
		t.Fatalf("degenerate histogram mishandled: %+v", h)
	}
}

func TestMedianPropertyBounded(t *testing.T) {
	// Median must lie within [min, max] for any input.
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return Median(clean) == 0
		}
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		m := Median(clean)
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterTotalProperty(t *testing.T) {
	// Total always equals the sum of Sorted counts.
	f := func(keys []uint8) bool {
		c := NewCounter[uint8]()
		for _, k := range keys {
			c.Add(k)
		}
		sum := 0
		for _, e := range c.Sorted() {
			sum += e.Count
		}
		return sum == c.Total() && c.Total() == len(keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
