// Package stats provides the small statistical and counting utilities the
// analysis pipeline uses: medians and percentiles, frequency counters with
// deterministic ordering, and proportion tables.
package stats

import (
	"cmp"
	"sort"
)

// Median returns the median of xs (the mean of the two central elements
// for even-length input). It returns 0 for empty input. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	// Halve before adding so extreme magnitudes cannot overflow.
	return s[n/2-1]/2 + s[n/2]/2
}

// MedianInts is Median over integer samples.
func MedianInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, v := range xs {
		fs[i] = float64(v)
	}
	return Median(fs)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Proportion returns part/total as a float, or 0 when total is 0.
func Proportion(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// Counter counts occurrences of comparable keys and reports them in a
// deterministic order (by descending count, ties broken by key order).
type Counter[K cmp.Ordered] struct {
	counts map[K]int
	total  int
}

// NewCounter returns an empty counter.
func NewCounter[K cmp.Ordered]() *Counter[K] {
	return &Counter[K]{counts: make(map[K]int)}
}

// Add increments key by one.
func (c *Counter[K]) Add(key K) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter[K]) AddN(key K, n int) {
	c.counts[key] += n
	c.total += n
}

// Count returns the count for key.
func (c *Counter[K]) Count(key K) int { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter[K]) Total() int { return c.total }

// Distinct returns the number of distinct keys.
func (c *Counter[K]) Distinct() int { return len(c.counts) }

// Entry is one key/count pair of a Counter.
type Entry[K cmp.Ordered] struct {
	Key   K
	Count int
}

// Sorted returns all entries ordered by descending count, ties broken by
// ascending key. The result is deterministic for identical inputs.
func (c *Counter[K]) Sorted() []Entry[K] {
	out := make([]Entry[K], 0, len(c.counts))
	for k, n := range c.counts {
		out = append(out, Entry[K]{k, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns the n highest-count entries (fewer if the counter holds
// fewer keys).
func (c *Counter[K]) Top(n int) []Entry[K] {
	s := c.Sorted()
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// Keys returns the distinct keys in ascending order.
func (c *Counter[K]) Keys() []K {
	ks := make([]K, 0, len(c.counts))
	for k := range c.counts {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Merge adds all counts from other into c.
func (c *Counter[K]) Merge(other *Counter[K]) {
	for k, n := range other.counts {
		c.AddN(k, n)
	}
}

// CountValues returns the multiset of counts (e.g. IPs-per-network sizes),
// useful for medians of group densities.
func (c *Counter[K]) CountValues() []int {
	vs := make([]int, 0, len(c.counts))
	for _, n := range c.counts {
		vs = append(vs, n)
	}
	sort.Ints(vs)
	return vs
}

// Histogram buckets float samples into fixed-width bins over [lo, hi).
// Samples outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	N      int
}

// NewHistogram creates a histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.N++
}

// Proportions returns each bin's share of all observations.
func (h *Histogram) Proportions() []float64 {
	out := make([]float64, len(h.Bins))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Bins {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}
