package tabulate

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("Table X", "Name", "Count").
		SetAligns(Left, Right).
		Row("alpha", 12).
		Separator().
		Row("b", 3456)
	out := tab.String()
	if !strings.HasPrefix(out, "Table X\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, row, rule, row
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "12") {
		t.Fatalf("row content wrong: %q", lines[3])
	}
	// Right-aligned count column: "12" should end the row at same width
	// as "3456"'s row.
	if len(lines[3]) != len(lines[5]) {
		t.Fatalf("alignment off: %q vs %q", lines[3], lines[5])
	}
}

func TestTableNoTitle(t *testing.T) {
	out := New("", "A").Row("x").String()
	if strings.HasPrefix(out, "\n") {
		t.Fatalf("empty title should not emit blank line:\n%q", out)
	}
}

func TestTableNotes(t *testing.T) {
	out := New("T", "A").Row("x").Note("n=%d", 5).String()
	if !strings.Contains(out, "n=5") {
		t.Fatalf("note missing:\n%s", out)
	}
}

func TestShortRowPads(t *testing.T) {
	out := New("", "A", "B").Cells("only").String()
	if !strings.Contains(out, "only") {
		t.Fatalf("row lost: %s", out)
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1 000"},
		{3040325302, "3 040 325 302"},
		{-12345, "-12 345"},
	}
	for _, c := range cases {
		if got := Count(c.in); got != c.want {
			t.Errorf("Count(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.284); got != "28.4%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestCountPct(t *testing.T) {
	if got := CountPct(4765, 73975); got != "4 765 (6.4%)" {
		t.Fatalf("CountPct = %q", got)
	}
	if got := CountPct(5, 0); got != "5 (0%)" {
		t.Fatalf("CountPct zero total = %q", got)
	}
}
