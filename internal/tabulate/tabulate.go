// Package tabulate renders aligned plain-text tables in the style the
// paper's tables use. The experiment harness and cmd tools print their
// reproduced tables through it, and EXPERIMENTS.md embeds its output.
package tabulate

import (
	"fmt"
	"strings"
)

// Align selects column alignment.
type Align int

const (
	// Left aligns cell contents to the left (default for text).
	Left Align = iota
	// Right aligns cell contents to the right (default for numbers).
	Right
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	header []string
	aligns []Align
	rows   [][]string
	notes  []string
}

// New returns a table with the given title and column headers. Columns
// default to left alignment; use SetAligns to change.
func New(title string, headers ...string) *Table {
	t := &Table{Title: title, header: headers}
	t.aligns = make([]Align, len(headers))
	return t
}

// SetAligns sets per-column alignment. Missing trailing entries stay Left.
func (t *Table) SetAligns(aligns ...Align) *Table {
	copy(t.aligns, aligns)
	return t
}

// Row appends a row. Values are formatted with %v; use Cells for
// preformatted strings.
func (t *Table) Row(cells ...any) *Table {
	ss := make([]string, len(cells))
	for i, c := range cells {
		ss[i] = fmt.Sprintf("%v", c)
	}
	return t.Cells(ss...)
}

// Cells appends a row of preformatted cells.
func (t *Table) Cells(cells ...string) *Table {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return t
}

// Separator appends a horizontal rule row.
func (t *Table) Separator() *Table {
	t.rows = append(t.rows, nil)
	return t
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(c))
			if t.aligns[i] == Right {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	rule := strings.Repeat("-", total)
	b.WriteString(rule)
	b.WriteByte('\n')
	for _, row := range t.rows {
		if row == nil {
			b.WriteString(rule)
			b.WriteByte('\n')
			continue
		}
		writeRow(row)
	}
	for _, n := range t.notes {
		b.WriteString("  " + n + "\n")
	}
	return b.String()
}

// Count formats an integer with thin thousands separators, matching the
// paper's "3 040 325 302" style.
func Count(n int) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	if len(s) > 3 {
		var parts []string
		for len(s) > 3 {
			parts = append([]string{s[len(s)-3:]}, parts...)
			s = s[:len(s)-3]
		}
		parts = append([]string{s}, parts...)
		s = strings.Join(parts, " ")
	}
	if neg {
		s = "-" + s
	}
	return s
}

// Pct formats a proportion (0..1) as a percentage with one decimal.
func Pct(p float64) string { return fmt.Sprintf("%.1f%%", p*100) }

// CountPct formats "N (P%)" as the paper's Table 3 cells do.
func CountPct(n, total int) string {
	if total == 0 {
		return fmt.Sprintf("%s (0%%)", Count(n))
	}
	return fmt.Sprintf("%s (%s)", Count(n), Pct(float64(n)/float64(total)))
}
