package tlsx

import (
	"crypto/tls"
	"errors"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"ntpscan/internal/netsim"
)

func testCert() *Certificate {
	return &Certificate{
		Subject:    "fritz.box",
		Issuer:     "fritz.box",
		SerialNum:  42,
		NotBefore:  time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		SelfSigned: true,
		Key:        KeyID{1, 2, 3},
	}
}

func pair() (net.Conn, net.Conn) {
	return netsim.NewConnPair(
		netip.MustParseAddrPort("[2001:db8::1]:40000"),
		netip.MustParseAddrPort("[2001:db8::2]:443"))
}

func TestHandshakeSuccess(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	cert := testCert()

	done := make(chan error, 1)
	go func() {
		sc, err := Server(s, ServerConfig{Certificate: cert})
		if err != nil {
			done <- err
			return
		}
		if sc.State().ServerName != "fritz.box" {
			t.Errorf("server saw SNI %q", sc.State().ServerName)
		}
		sc.Write([]byte("app-data"))
		done <- nil
	}()

	cc, err := Client(c, ClientConfig{ServerName: "fritz.box"})
	if err != nil {
		t.Fatal(err)
	}
	st := cc.State()
	if st.Certificate.Subject != "fritz.box" || !st.Certificate.SelfSigned {
		t.Fatalf("client cert = %+v", st.Certificate)
	}
	if st.Certificate.Fingerprint() != cert.Fingerprint() {
		t.Fatal("fingerprint changed in transit")
	}
	if st.Version != VersionTLS12 {
		t.Fatalf("version = %v", st.Version)
	}
	buf := make([]byte, 8)
	if _, err := cc.Read(buf); err != nil || string(buf) != "app-data" {
		t.Fatalf("app data = %q %v", buf, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestVersionNegotiationMin(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	go Server(s, ServerConfig{Certificate: testCert(), Version: VersionTLS13})
	cc, err := Client(c, ClientConfig{MaxVersion: VersionTLS11})
	if err != nil {
		t.Fatal(err)
	}
	if cc.State().Version != VersionTLS11 {
		t.Fatalf("negotiated %v", cc.State().Version)
	}
}

func TestRequireSNIRejectsBareClient(t *testing.T) {
	// The CDN behaviour behind the paper's 356M failed hitlist TLS
	// handshakes: no hostname in the probe, handshake refused.
	c, s := pair()
	defer c.Close()
	defer s.Close()
	srvErr := make(chan error, 1)
	go func() {
		_, err := Server(s, ServerConfig{Certificate: testCert(), RequireSNI: true})
		srvErr <- err
	}()
	_, err := Client(c, ClientConfig{}) // no SNI
	var alert *AlertError
	if !errors.As(err, &alert) || alert.Reason != AlertUnrecognizedName {
		t.Fatalf("client err = %v", err)
	}
	if err := <-srvErr; err == nil {
		t.Fatal("server should report the rejection too")
	}
}

func TestRequireSNIAcceptsNamedClient(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	go Server(s, ServerConfig{Certificate: testCert(), RequireSNI: true})
	if _, err := Client(c, ClientConfig{ServerName: "example.org"}); err != nil {
		t.Fatalf("named client rejected: %v", err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	go c.Write([]byte("GET / HTTP/1.1\r\n\r\n")) // plaintext HTTP hitting a TLS port
	_, err := Server(s, ServerConfig{Certificate: testCert()})
	if !errors.Is(err, ErrNotTLS) {
		t.Fatalf("got %v", err)
	}
}

func TestClientAgainstNonTLSServer(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	go func() {
		buf := make([]byte, 64)
		s.Read(buf)
		s.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
	}()
	if _, err := Client(c, ClientConfig{}); err == nil {
		t.Fatal("handshake with HTTP server succeeded")
	}
}

func TestServerRequiresCertificate(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	if _, err := Server(s, ServerConfig{}); err == nil {
		t.Fatal("nil certificate accepted")
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	f := func(subject, issuer string, serial uint64, self bool, key [16]byte) bool {
		if len(subject) > 60000 || len(issuer) > 60000 {
			return true
		}
		c := &Certificate{
			Subject: subject, Issuer: issuer, SerialNum: serial,
			NotBefore:  time.Unix(1700000000, 0).UTC(),
			NotAfter:   time.Unix(1800000000, 0).UTC(),
			SelfSigned: self, Key: key,
		}
		got, err := unmarshalCert(c.marshal())
		return err == nil && *got == *c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	full := testCert().marshal()
	for i := 0; i < len(full); i++ {
		if _, err := unmarshalCert(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a, b := testCert(), testCert()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical certs differ")
	}
	b.SerialNum++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("serial change did not alter fingerprint")
	}
	c := testCert()
	c.Key = KeyID{9}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("key change did not alter fingerprint")
	}
	if len(a.FingerprintHex()) != 64 {
		t.Fatal("hex fingerprint length wrong")
	}
}

func TestValidAt(t *testing.T) {
	c := testCert()
	if c.ValidAt(time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("valid before NotBefore")
	}
	if !c.ValidAt(time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("invalid within window")
	}
	if c.ValidAt(time.Date(2027, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("valid after NotAfter")
	}
}

func TestAlertAndVersionStrings(t *testing.T) {
	if AlertUnrecognizedName.String() != "unrecognized_name" {
		t.Fatal("alert label wrong")
	}
	if VersionTLS13.String() != "TLS 1.3" {
		t.Fatal("version label wrong")
	}
	if Version(0x9999).String() == "" || AlertReason(9).String() == "" {
		t.Fatal("unknown labels empty")
	}
	e := &AlertError{Reason: AlertHandshakeFailure}
	if e.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestGenerateX509RealTLS(t *testing.T) {
	// The generated certificate must work with the stdlib TLS stack
	// over a real loopback connection.
	cert, err := GenerateX509("scan-test.local", []net.IP{net.ParseIP("127.0.0.1")}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("ok"))
		conn.Close()
	}()
	conn, err := tls.Dial("tcp", ln.Addr().String(), &tls.Config{InsecureSkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2)
	if _, err := conn.Read(buf); err != nil || string(buf) != "ok" {
		t.Fatalf("read %q %v", buf, err)
	}
	if cn := conn.ConnectionState().PeerCertificates[0].Subject.CommonName; cn != "scan-test.local" {
		t.Fatalf("CN = %q", cn)
	}
}

func BenchmarkHandshake(b *testing.B) {
	cert := testCert()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, s := pair()
		go Server(s, ServerConfig{Certificate: cert})
		if _, err := Client(c, ClientConfig{ServerName: "x"}); err != nil {
			b.Fatal(err)
		}
		c.Close()
		s.Close()
	}
}
