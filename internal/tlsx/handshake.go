package tlsx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Handshake message framing: one type byte, a 3-byte big-endian length,
// then the payload — the shape of TLS handshake messages.
const (
	msgClientHello = 1
	msgServerHello = 2
	msgAlert       = 3

	maxHandshakeLen = 1 << 16
)

// Errors returned by handshakes.
var (
	ErrNotTLS = errors.New("tlsx: peer did not speak the handshake protocol")
)

// msgBufs pools handshake scratch buffers. Every TLS probe frames two
// messages and parses one; with the hitlist's millions of handshakes
// the per-message allocations were a visible slice of campaign heap
// profiles. Certificates comfortably fit the initial capacity.
var msgBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func writeMsg(w io.Writer, typ byte, payload []byte) error {
	bp := msgBufs.Get().(*[]byte)
	b := append((*bp)[:0], typ, byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
	b = append(b, payload...)
	_, err := w.Write(b)
	*bp = b[:0]
	msgBufs.Put(bp)
	return err
}

// readMsg reads one handshake message into *scratch (growing it if
// needed); the returned payload aliases the scratch buffer and is only
// valid until the caller releases it.
func readMsg(r io.Reader, scratch *[]byte) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	if typ != msgClientHello && typ != msgServerHello && typ != msgAlert {
		return 0, nil, ErrNotTLS
	}
	n := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > maxHandshakeLen {
		return 0, nil, fmt.Errorf("tlsx: handshake message of %d bytes exceeds limit", n)
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	payload = (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// Alert errors are a fixed set; the scan path compares and stringifies
// them but never mutates, so each reason is a shared value.
var alertErrors = map[AlertReason]*AlertError{
	AlertHandshakeFailure:  {Reason: AlertHandshakeFailure},
	AlertUnrecognizedName:  {Reason: AlertUnrecognizedName},
	AlertProtocolVersion:   {Reason: AlertProtocolVersion},
	AlertInternalError:     {Reason: AlertInternalError},
	AlertAccessDeniedAlert: {Reason: AlertAccessDeniedAlert},
}

func alertError(r AlertReason) *AlertError {
	if e, ok := alertErrors[r]; ok {
		return e
	}
	return &AlertError{Reason: r}
}

// Constant one-byte alert payloads for the rejection paths.
var (
	alertHandshakeFailurePayload = []byte{byte(AlertHandshakeFailure)}
	alertUnrecognizedNamePayload = []byte{byte(AlertUnrecognizedName)}
	alertProtocolVersionPayload  = []byte{byte(AlertProtocolVersion)}
)

// ClientConfig configures a client-side handshake.
type ClientConfig struct {
	// ServerName is the SNI value; empty means no SNI extension, which
	// name-requiring servers reject with unrecognized_name.
	ServerName string
	// MaxVersion caps the offered version. Zero means TLS 1.3.
	MaxVersion Version
}

// ServerConfig configures a server-side handshake.
type ServerConfig struct {
	// Certificate is presented to every client. Required.
	Certificate *Certificate
	// Version is the version the server negotiates (its maximum). The
	// handshake settles on min(client, server). Zero means TLS 1.2,
	// the most common deployment in the paper's scans.
	Version Version
	// RequireSNI rejects clients that send no server name — the CDN
	// behaviour responsible for the hitlist's millions of failed HTTPS
	// handshakes (§4.2).
	RequireSNI bool
}

// ConnState describes the completed handshake.
type ConnState struct {
	Version     Version
	ServerName  string // SNI as sent/received
	Certificate *Certificate
}

// Conn is a handshake-wrapped connection. Application bytes pass through
// unchanged after the handshake.
type Conn struct {
	net.Conn
	state ConnState
}

// State returns the handshake results.
func (c *Conn) State() ConnState { return c.state }

// Client performs the client side of the handshake over conn. On success
// the returned Conn carries the server certificate; the underlying conn
// must not be used directly afterwards.
// helloNoSNI is the client hello of the mass-scan probing mode (no
// server name, maximum version TLS 1.3) — the only hello the campaign
// hot path sends, precomputed.
var helloNoSNI = []byte{byte(VersionTLS13 >> 8), byte(VersionTLS13 & 0xff), 0, 0}

func Client(conn net.Conn, cfg ClientConfig) (*Conn, error) {
	maxV := cfg.MaxVersion
	if maxV == 0 {
		maxV = VersionTLS13
	}
	hello := helloNoSNI
	if maxV != VersionTLS13 || cfg.ServerName != "" {
		hello = make([]byte, 2+2+len(cfg.ServerName))
		binary.BigEndian.PutUint16(hello, uint16(maxV))
		binary.BigEndian.PutUint16(hello[2:], uint16(len(cfg.ServerName)))
		copy(hello[4:], cfg.ServerName)
	}
	if err := writeMsg(conn, msgClientHello, hello); err != nil {
		return nil, err
	}

	bp := msgBufs.Get().(*[]byte)
	defer msgBufs.Put(bp)
	typ, payload, err := readMsg(conn, bp)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgAlert:
		if len(payload) < 1 {
			return nil, ErrNotTLS
		}
		return nil, alertError(AlertReason(payload[0]))
	case msgServerHello:
		if len(payload) < 2 {
			return nil, ErrNotTLS
		}
		version := Version(binary.BigEndian.Uint16(payload))
		cert, err := unmarshalCert(payload[2:])
		if err != nil {
			return nil, err
		}
		return &Conn{Conn: conn, state: ConnState{
			Version: version, ServerName: cfg.ServerName, Certificate: cert,
		}}, nil
	default:
		return nil, ErrNotTLS
	}
}

// Server performs the server side of the handshake over conn.
func Server(conn net.Conn, cfg ServerConfig) (*Conn, error) {
	if cfg.Certificate == nil {
		return nil, errors.New("tlsx: ServerConfig.Certificate is required")
	}
	srvV := cfg.Version
	if srvV == 0 {
		srvV = VersionTLS12
	}
	bp := msgBufs.Get().(*[]byte)
	defer msgBufs.Put(bp)
	typ, payload, err := readMsg(conn, bp)
	if err != nil {
		return nil, err
	}
	if typ != msgClientHello || len(payload) < 4 {
		writeMsg(conn, msgAlert, alertHandshakeFailurePayload)
		return nil, ErrNotTLS
	}
	clientV := Version(binary.BigEndian.Uint16(payload))
	nameLen := int(binary.BigEndian.Uint16(payload[2:]))
	if len(payload) < 4+nameLen {
		writeMsg(conn, msgAlert, alertHandshakeFailurePayload)
		return nil, ErrNotTLS
	}
	serverName := string(payload[4 : 4+nameLen])

	if cfg.RequireSNI && serverName == "" {
		writeMsg(conn, msgAlert, alertUnrecognizedNamePayload)
		return nil, alertError(AlertUnrecognizedName)
	}
	version := srvV
	if clientV < version {
		version = clientV
	}
	if version < VersionTLS10 {
		writeMsg(conn, msgAlert, alertProtocolVersionPayload)
		return nil, alertError(AlertProtocolVersion)
	}

	rp := msgBufs.Get().(*[]byte)
	resp := append((*rp)[:0], byte(version>>8), byte(version))
	resp = cfg.Certificate.appendMarshal(resp)
	err = writeMsg(conn, msgServerHello, resp)
	*rp = resp[:0]
	msgBufs.Put(rp)
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: conn, state: ConnState{
		Version: version, ServerName: serverName, Certificate: cfg.Certificate,
	}}, nil
}
