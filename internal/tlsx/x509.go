package tlsx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"time"
)

// GenerateX509 creates a real self-signed certificate and key pair
// suitable for stdlib crypto/tls servers. The simulation never calls
// this — it is for the examples and cmd tools that demonstrate the
// pipeline over genuine sockets, where host counts are small enough for
// real cryptography.
func GenerateX509(commonName string, ips []net.IP, validFor time.Duration) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 64))
	if err != nil {
		return tls.Certificate{}, err
	}
	now := time.Now()
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(validFor),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		DNSNames:              []string{commonName},
		IPAddresses:           ips,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{
		Certificate: [][]byte{der},
		PrivateKey:  key,
	}, nil
}
