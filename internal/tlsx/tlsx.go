// Package tlsx implements the lightweight TLS stand-in used for mass
// scanning in the simulation.
//
// The paper's analyses consume exactly three things from TLS: whether a
// handshake succeeds, which certificate the server presents (fingerprint,
// subject, validity, self-signed flag), and key identity for reuse
// analysis. Generating and verifying millions of real X.509 chains would
// dominate experiment run time without changing any of those outputs, so
// tlsx speaks a compact handshake that carries the same identity fields
// and then passes application data through unencrypted ("null cipher").
// The handshake is a real wire protocol with framing, version
// negotiation, SNI, and alerts — scanners exercise genuine
// parse-and-validate code paths, including the hostname-required failure
// mode the paper observed on CDN front-ends.
//
// Confidentiality is intentionally out of scope; for small host counts
// the examples use the stdlib crypto/tls with certificates from
// GenerateX509 instead.
package tlsx

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"ntpscan/internal/intern"
)

// Version identifies the negotiated protocol version, mirroring TLS
// version codes.
type Version uint16

// Supported versions.
const (
	VersionTLS10 Version = 0x0301
	VersionTLS11 Version = 0x0302
	VersionTLS12 Version = 0x0303
	VersionTLS13 Version = 0x0304
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case VersionTLS10:
		return "TLS 1.0"
	case VersionTLS11:
		return "TLS 1.1"
	case VersionTLS12:
		return "TLS 1.2"
	case VersionTLS13:
		return "TLS 1.3"
	default:
		return fmt.Sprintf("TLS(%#04x)", uint16(v))
	}
}

// KeyID identifies a server key pair. Reused keys (the paper's §6
// analysis) share a KeyID across certificates and hosts.
type KeyID [16]byte

// Hex returns the lowercase hex form.
func (k KeyID) Hex() string { return hex.EncodeToString(k[:]) }

// Certificate is the identity document exchanged in the handshake. It
// carries the fields the paper's analyses read from real X.509
// certificates.
type Certificate struct {
	Subject    string // subject common name
	Issuer     string // issuer common name; equal to Subject when self-signed
	SerialNum  uint64
	NotBefore  time.Time
	NotAfter   time.Time
	SelfSigned bool
	Key        KeyID
}

// marshalBufs pools certificate encodings for Fingerprint: the scanner
// fingerprints every completed handshake, and the transient marshal was
// a per-result allocation. Certificates fit the initial capacity.
var marshalBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// Fingerprint returns the SHA-256 digest of the certificate's canonical
// encoding, the dedup key used throughout the analysis ("#Certs/Keys").
func (c *Certificate) Fingerprint() [32]byte {
	bp := marshalBufs.Get().(*[]byte)
	b := c.appendMarshal((*bp)[:0])
	sum := sha256.Sum256(b)
	*bp = b[:0]
	marshalBufs.Put(bp)
	return sum
}

// FingerprintHex is Fingerprint in lowercase hex.
func (c *Certificate) FingerprintHex() string {
	fp := c.Fingerprint()
	return hex.EncodeToString(fp[:])
}

// ValidAt reports whether t falls within the certificate's validity
// window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// marshal encodes the certificate deterministically.
func (c *Certificate) marshal() []byte {
	return c.appendMarshal(make([]byte, 0, 2+len(c.Subject)+2+len(c.Issuer)+8*3+1+16))
}

// appendMarshal encodes the certificate onto b, allocating only if b
// lacks capacity — the handshake hot path encodes into pooled buffers.
func (c *Certificate) appendMarshal(b []byte) []byte {
	putStr := func(s string) {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(s)))
		b = append(b, l[:]...)
		b = append(b, s...)
	}
	putStr(c.Subject)
	putStr(c.Issuer)
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], c.SerialNum)
	b = append(b, num[:]...)
	binary.BigEndian.PutUint64(num[:], uint64(c.NotBefore.Unix()))
	b = append(b, num[:]...)
	binary.BigEndian.PutUint64(num[:], uint64(c.NotAfter.Unix()))
	b = append(b, num[:]...)
	if c.SelfSigned {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, c.Key[:]...)
	return b
}

// unmarshalCert decodes a certificate; the inverse of marshal. Subject
// and issuer strings are interned: a mass scan decodes the same few
// device identities millions of times, and interning makes each repeat
// a map hit instead of a fresh string.
func unmarshalCert(b []byte) (*Certificate, error) {
	c := &Certificate{}
	getStr := func() (string, error) {
		if len(b) < 2 {
			return "", errTruncated
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return "", errTruncated
		}
		s := intern.Default.Bytes(b[:n])
		b = b[n:]
		return s, nil
	}
	var err error
	if c.Subject, err = getStr(); err != nil {
		return nil, err
	}
	if c.Issuer, err = getStr(); err != nil {
		return nil, err
	}
	if len(b) < 8*3+1+16 {
		return nil, errTruncated
	}
	c.SerialNum = binary.BigEndian.Uint64(b)
	b = b[8:]
	c.NotBefore = time.Unix(int64(binary.BigEndian.Uint64(b)), 0).UTC()
	b = b[8:]
	c.NotAfter = time.Unix(int64(binary.BigEndian.Uint64(b)), 0).UTC()
	b = b[8:]
	c.SelfSigned = b[0] == 1
	b = b[1:]
	copy(c.Key[:], b[:16])
	return c, nil
}

var errTruncated = errors.New("tlsx: truncated certificate")

// AlertReason codes carried in handshake alerts, modelled on TLS alert
// descriptions.
type AlertReason uint8

// Alert reasons.
const (
	AlertHandshakeFailure  AlertReason = 40
	AlertUnrecognizedName  AlertReason = 112 // SNI required but absent/unknown
	AlertProtocolVersion   AlertReason = 70
	AlertInternalError     AlertReason = 80
	AlertAccessDeniedAlert AlertReason = 49
)

// String implements fmt.Stringer.
func (r AlertReason) String() string {
	switch r {
	case AlertHandshakeFailure:
		return "handshake_failure"
	case AlertUnrecognizedName:
		return "unrecognized_name"
	case AlertProtocolVersion:
		return "protocol_version"
	case AlertInternalError:
		return "internal_error"
	case AlertAccessDeniedAlert:
		return "access_denied"
	default:
		return fmt.Sprintf("alert(%d)", uint8(r))
	}
}

// AlertError is the error returned when the peer aborts the handshake.
type AlertError struct {
	Reason AlertReason
}

// Error implements error. The known reasons return precomputed
// messages: the scan path stringifies every failed handshake, and a
// per-call Sprintf was visible in campaign heap profiles.
func (e *AlertError) Error() string {
	switch e.Reason {
	case AlertHandshakeFailure:
		return "tlsx: alert from peer: handshake_failure"
	case AlertUnrecognizedName:
		return "tlsx: alert from peer: unrecognized_name"
	case AlertProtocolVersion:
		return "tlsx: alert from peer: protocol_version"
	case AlertInternalError:
		return "tlsx: alert from peer: internal_error"
	case AlertAccessDeniedAlert:
		return "tlsx: alert from peer: access_denied"
	}
	return "tlsx: alert from peer: " + e.Reason.String()
}
