package tlsx

import "testing"

// FuzzUnmarshalCert hardens certificate decoding (handshake payloads
// come straight from scanned peers).
func FuzzUnmarshalCert(f *testing.F) {
	f.Add(testCert().marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 5, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := unmarshalCert(data)
		if err != nil {
			return
		}
		back, err := unmarshalCert(c.marshal())
		if err != nil || *back != *c {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
