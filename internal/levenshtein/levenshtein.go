// Package levenshtein implements edit distance and the normalized-distance
// clustering the paper uses to group HTML page titles (§4.3.1: titles are
// grouped when their Levenshtein distance normalized to 0-1 is at most
// 0.25).
package levenshtein

import (
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// Distance returns the Levenshtein edit distance between a and b, counting
// insertions, deletions and substitutions at unit cost. It operates on
// runes, not bytes, so multi-byte characters count once.
func Distance(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	// Ensure rb is the shorter row to bound memory at O(min(m,n)).
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			next := min3(prev[j]+1, prev[j-1]+1, cur+cost)
			cur = prev[j]
			prev[j] = next
		}
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Normalized returns Distance(a, b) divided by the length (in runes) of
// the longer string, yielding a dissimilarity in [0, 1]. Two empty strings
// have distance 0.
func Normalized(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(Distance(a, b)) / float64(n)
}

// Similar reports whether the normalized distance between a and b is at
// most threshold.
func Similar(a, b string, threshold float64) bool {
	// Cheap length pre-filter: if the length difference alone already
	// exceeds the threshold the full DP cannot pass it.
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	longer, shorter := la, lb
	if lb > la {
		longer, shorter = lb, la
	}
	if longer == 0 {
		return true
	}
	if float64(longer-shorter)/float64(longer) > threshold {
		return false
	}
	return Normalized(a, b) <= threshold
}

// Cluster groups strings whose normalized distance to a cluster's
// representative is at most threshold. It is the greedy first-fit
// clustering the paper's title grouping implies: items are processed in
// the given order; each item joins the first existing cluster whose
// representative is similar enough, otherwise it founds a new cluster
// with itself as representative.
//
// The weights slice, if non-nil, must parallel items; the representative
// reported for each cluster is its first (founding) item, and counts are
// summed weights. With nil weights every item counts once.
func Cluster(items []string, weights []int, threshold float64) []Group {
	return ClusterN(items, weights, threshold, 1)
}

// clusterParallelMin is the group count below which the representative
// scan stays serial; fanning out over a handful of groups costs more
// than the distance computations it saves.
const clusterParallelMin = 64

// ClusterN is Cluster with the per-item representative scan fanned out
// over up to workers goroutines. Each item still joins the FIRST
// (lowest-index) similar cluster: the chunks report their first local
// match and the minimum wins, so the grouping is bit-identical to the
// serial greedy pass at any worker count.
func ClusterN(items []string, weights []int, threshold float64, workers int) []Group {
	var groups []Group
	for i, it := range items {
		w := 1
		if weights != nil {
			w = weights[i]
		}
		gi := firstSimilar(groups, it, threshold, workers)
		if gi >= 0 {
			groups[gi].Members = append(groups[gi].Members, it)
			groups[gi].Count += w
		} else {
			groups = append(groups, Group{
				Representative: it,
				Members:        []string{it},
				Count:          w,
			})
		}
	}
	return groups
}

// firstSimilar returns the lowest group index whose representative is
// similar to it, or -1.
func firstSimilar(groups []Group, it string, threshold float64, workers int) int {
	n := len(groups)
	if workers > n {
		workers = n
	}
	if workers < 2 || n < clusterParallelMin {
		for gi := range groups {
			if Similar(groups[gi].Representative, it, threshold) {
				return gi
			}
		}
		return -1
	}
	// best holds the lowest matching index found so far; chunks past it
	// stop early since they cannot improve the first-fit answer.
	var best atomic.Int64
	best.Store(int64(n))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := n*i/workers, n*(i+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := lo; gi < hi; gi++ {
				if best.Load() <= int64(lo) {
					return
				}
				if Similar(groups[gi].Representative, it, threshold) {
					for {
						cur := best.Load()
						if int64(gi) >= cur || best.CompareAndSwap(cur, int64(gi)) {
							break
						}
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if b := best.Load(); b < int64(n) {
		return int(b)
	}
	return -1
}

// Group is one cluster produced by Cluster.
type Group struct {
	Representative string   // the founding member, used for matching
	Members        []string // all member strings, founding member first
	Count          int      // total weight of members
}
