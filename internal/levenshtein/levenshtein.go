// Package levenshtein implements edit distance and the normalized-distance
// clustering the paper uses to group HTML page titles (§4.3.1: titles are
// grouped when their Levenshtein distance normalized to 0-1 is at most
// 0.25).
package levenshtein

import "unicode/utf8"

// Distance returns the Levenshtein edit distance between a and b, counting
// insertions, deletions and substitutions at unit cost. It operates on
// runes, not bytes, so multi-byte characters count once.
func Distance(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	// Ensure rb is the shorter row to bound memory at O(min(m,n)).
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			next := min3(prev[j]+1, prev[j-1]+1, cur+cost)
			cur = prev[j]
			prev[j] = next
		}
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Normalized returns Distance(a, b) divided by the length (in runes) of
// the longer string, yielding a dissimilarity in [0, 1]. Two empty strings
// have distance 0.
func Normalized(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(Distance(a, b)) / float64(n)
}

// Similar reports whether the normalized distance between a and b is at
// most threshold.
func Similar(a, b string, threshold float64) bool {
	// Cheap length pre-filter: if the length difference alone already
	// exceeds the threshold the full DP cannot pass it.
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	longer, shorter := la, lb
	if lb > la {
		longer, shorter = lb, la
	}
	if longer == 0 {
		return true
	}
	if float64(longer-shorter)/float64(longer) > threshold {
		return false
	}
	return Normalized(a, b) <= threshold
}

// Cluster groups strings whose normalized distance to a cluster's
// representative is at most threshold. It is the greedy first-fit
// clustering the paper's title grouping implies: items are processed in
// the given order; each item joins the first existing cluster whose
// representative is similar enough, otherwise it founds a new cluster
// with itself as representative.
//
// The weights slice, if non-nil, must parallel items; the representative
// reported for each cluster is its first (founding) item, and counts are
// summed weights. With nil weights every item counts once.
func Cluster(items []string, weights []int, threshold float64) []Group {
	var groups []Group
	for i, it := range items {
		w := 1
		if weights != nil {
			w = weights[i]
		}
		placed := false
		for gi := range groups {
			if Similar(groups[gi].Representative, it, threshold) {
				groups[gi].Members = append(groups[gi].Members, it)
				groups[gi].Count += w
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, Group{
				Representative: it,
				Members:        []string{it},
				Count:          w,
			})
		}
	}
	return groups
}

// Group is one cluster produced by Cluster.
type Group struct {
	Representative string   // the founding member, used for matching
	Members        []string // all member strings, founding member first
	Count          int      // total weight of members
}
