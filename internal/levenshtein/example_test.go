package levenshtein_test

import (
	"fmt"

	"ntpscan/internal/levenshtein"
)

func ExampleCluster() {
	// The paper's §4.3.1 grouping: titles within normalized distance
	// 0.25 merge, so version variants collapse into one device type.
	titles := []string{
		"FRITZ!Box 7590",
		"FRITZ!Box 7490",
		"D-LINK",
		"FRITZ!Box 7530",
	}
	for _, g := range levenshtein.Cluster(titles, nil, 0.25) {
		fmt.Printf("%s: %d\n", g.Representative, g.Count)
	}
	// Output:
	// FRITZ!Box 7590: 3
	// D-LINK: 1
}

func ExampleNormalized() {
	fmt.Printf("%.2f\n", levenshtein.Normalized("Plesk Obsidian 18.0.34", "Plesk Obsidian 18.0.35"))
	// Output:
	// 0.05
}
