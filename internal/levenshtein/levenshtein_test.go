package levenshtein

import (
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"same", "same", 0},
		{"FRITZ!Box 7590", "FRITZ!Box 7490", 1},
		{"héllo", "hello", 1}, // rune-wise, not byte-wise
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool { return Distance(a, b) == Distance(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceIdentity(t *testing.T) {
	f := func(a string) bool { return Distance(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	f := func(a, b string) bool {
		d := Distance(a, b)
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		max := la
		if lb > max {
			max = lb
		}
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized("", ""); got != 0 {
		t.Fatalf("Normalized empty = %v", got)
	}
	if got := Normalized("abcd", "abce"); got != 0.25 {
		t.Fatalf("Normalized = %v, want 0.25", got)
	}
	if got := Normalized("ab", "xy"); got != 1 {
		t.Fatalf("Normalized disjoint = %v, want 1", got)
	}
}

func TestNormalizedRange(t *testing.T) {
	f := func(a, b string) bool {
		n := Normalized(a, b)
		return n >= 0 && n <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilar(t *testing.T) {
	// Paper threshold: 0.25 groups minor version differences.
	if !Similar("Plesk Obsidian 18.0.34", "Plesk Obsidian 18.0.35", 0.25) {
		t.Fatal("version variants should group")
	}
	if Similar("FRITZ!Box", "D-LINK", 0.25) {
		t.Fatal("distinct products must not group")
	}
	if !Similar("", "", 0.25) {
		t.Fatal("two empties are similar")
	}
}

func TestSimilarLengthPrefilterAgrees(t *testing.T) {
	// The fast pre-filter must never change the verdict.
	f := func(a, b string) bool {
		return Similar(a, b, 0.25) == (Normalized(a, b) <= 0.25)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterBasic(t *testing.T) {
	items := []string{
		"FRITZ!Box 7590", "FRITZ!Box 7490", "D-LINK Router", "FRITZ!Box 6660",
	}
	groups := Cluster(items, nil, 0.25)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
	if groups[0].Representative != "FRITZ!Box 7590" || groups[0].Count != 3 {
		t.Fatalf("group 0 wrong: %+v", groups[0])
	}
	if groups[1].Count != 1 {
		t.Fatalf("group 1 wrong: %+v", groups[1])
	}
}

func TestClusterWeights(t *testing.T) {
	groups := Cluster([]string{"aaa", "aab"}, []int{10, 5}, 0.5)
	if len(groups) != 1 || groups[0].Count != 15 {
		t.Fatalf("weighted cluster wrong: %+v", groups)
	}
}

func TestClusterEmpty(t *testing.T) {
	if got := Cluster(nil, nil, 0.25); got != nil {
		t.Fatalf("Cluster(nil) = %v", got)
	}
}

func TestClusterCountInvariant(t *testing.T) {
	// Total count across groups equals the number of items (unit weights),
	// and every item lands in exactly one group.
	f := func(raw []string) bool {
		groups := Cluster(raw, nil, 0.25)
		total, members := 0, 0
		for _, g := range groups {
			total += g.Count
			members += len(g.Members)
		}
		return total == len(raw) && members == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistanceTitles(b *testing.B) {
	x := "3CX Phone System Management Console"
	y := "3CX Phone System Mgmt Console v18"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func TestClusterNMatchesSerial(t *testing.T) {
	// A corpus large enough to engage the parallel representative scan
	// (>64 groups), with near-duplicates that must land in one group.
	var items []string
	var weights []int
	models := []string{"FRITZ!Box", "Speedport", "EdgeRouter", "TL-WR", "Archer", "RT-AX", "DIR-", "WNDR"}
	for i := 0; i < 400; i++ {
		m := models[i%len(models)]
		items = append(items, m+" "+string(rune('A'+i%26))+"-"+string(rune('0'+i%10))+string(rune('0'+(i/10)%10)))
		weights = append(weights, 1+i%5)
	}
	serial := Cluster(items, weights, 0.2)
	for _, w := range []int{2, 4, 8} {
		par := ClusterN(items, weights, 0.2, w)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d groups vs %d serial", w, len(par), len(serial))
		}
		for i := range par {
			if par[i].Representative != serial[i].Representative ||
				par[i].Count != serial[i].Count ||
				len(par[i].Members) != len(serial[i].Members) {
				t.Fatalf("workers=%d group %d diverges: %+v vs %+v", w, i, par[i], serial[i])
			}
		}
	}
}
