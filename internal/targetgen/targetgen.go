// Package targetgen implements a target-generation algorithm in the
// Entropy/IP family (Foremski et al., §2.1.1 of the paper), trained on
// a seed set of observed IPv6 addresses. The paper's discussion leaves
// "address generators trained on [NTP-sourced] addresses" as future
// work; this package builds one so the question can be answered
// experimentally (see experiments.ExtensionTargetGen): generation
// recovers the structured, stable corner of the seed space but cannot
// reconstruct ephemeral privacy addresses — quantifying why live
// sourcing beats any static derivative of it.
//
// The model is deliberately the simple published shape: learn the
// distribution of observed /64 network prefixes, segment interface
// identifiers by entropy, and model low-entropy segments with
// per-nibble value histograms. No machine-learning extensions.
package targetgen

import (
	"net/netip"
	"sort"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/rng"
)

// Model is a trained generator.
type Model struct {
	// prefixes are the observed /64s with observation counts, the
	// "network" half of the model.
	prefixes  []weightedPrefix
	cumulativ []float64
	total     float64

	// nibbleHist[i][v] counts value v at IID nibble position i among
	// structured/low-entropy seeds.
	nibbleHist [16][16]float64
	// structuredSeeds is the share of seeds whose IIDs were considered
	// learnable (entropy below the threshold).
	structuredSeeds int
	totalSeeds      int
}

type weightedPrefix struct {
	hi    uint64
	count float64
}

// entropyThreshold separates learnable identifiers from effectively
// random ones. Privacy addresses sit far above it.
const entropyThreshold = 1.8

// Train builds a model from seed addresses.
func Train(seeds []netip.Addr) *Model {
	m := &Model{}
	prefixCount := make(map[uint64]float64)
	for _, a := range seeds {
		if !ipv6x.Is6(a) {
			continue
		}
		m.totalSeeds++
		hi, lo := ipv6x.Parts(a)
		prefixCount[hi]++
		if ipv6x.IIDEntropy(a) <= entropyThreshold {
			m.structuredSeeds++
			for i := 0; i < 16; i++ {
				nib := lo >> (60 - 4*uint(i)) & 0xf
				m.nibbleHist[i][nib]++
			}
		}
	}
	for hi, c := range prefixCount {
		m.prefixes = append(m.prefixes, weightedPrefix{hi: hi, count: c})
	}
	sort.Slice(m.prefixes, func(i, j int) bool { return m.prefixes[i].hi < m.prefixes[j].hi })
	m.cumulativ = make([]float64, len(m.prefixes))
	for i, p := range m.prefixes {
		m.total += p.count
		m.cumulativ[i] = m.total
	}
	return m
}

// SeedCount returns how many seeds trained the model.
func (m *Model) SeedCount() int { return m.totalSeeds }

// LearnableShare is the fraction of seeds whose identifiers the model
// could actually learn from. For NTP-sourced eyeball data this is
// small — most of the space is privacy addressing.
func (m *Model) LearnableShare() float64 {
	if m.totalSeeds == 0 {
		return 0
	}
	return float64(m.structuredSeeds) / float64(m.totalSeeds)
}

// Prefixes returns how many distinct /64s the model learned.
func (m *Model) Prefixes() int { return len(m.prefixes) }

// samplePrefix draws a /64 proportional to observation count.
func (m *Model) samplePrefix(r *rng.Stream) (uint64, bool) {
	if m.total == 0 {
		return 0, false
	}
	target := r.Float64() * m.total
	idx := sort.SearchFloat64s(m.cumulativ, target)
	if idx >= len(m.prefixes) {
		idx = len(m.prefixes) - 1
	}
	return m.prefixes[idx].hi, true
}

// sampleIID draws an identifier from the per-nibble histograms,
// falling back to small structured values where a position was never
// observed.
func (m *Model) sampleIID(r *rng.Stream) uint64 {
	var iid uint64
	for i := 0; i < 16; i++ {
		var weights [16]float64
		seen := 0.0
		for v := 0; v < 16; v++ {
			weights[v] = m.nibbleHist[i][v]
			seen += weights[v]
		}
		var nib uint64
		if seen > 0 {
			target := r.Float64() * seen
			for v := 0; v < 16; v++ {
				target -= weights[v]
				if target < 0 {
					nib = uint64(v)
					break
				}
			}
		}
		iid = iid<<4 | nib
	}
	if iid == 0 {
		iid = 1
	}
	return iid
}

// Generate emits n candidate addresses not present in the seed set.
// Candidates combine learned prefixes with learned identifier
// structure; when the identifier model is empty the prefix's ::1 is
// proposed (the weakest reasonable guess).
func (m *Model) Generate(n int, seed uint64) []netip.Addr {
	r := rng.New(seed ^ 0x7a9647)
	seen := make(map[netip.Addr]struct{}, n)
	out := make([]netip.Addr, 0, n)
	for attempts := 0; len(out) < n && attempts < 20*n+100; attempts++ {
		hi, ok := m.samplePrefix(r)
		if !ok {
			break
		}
		addr := ipv6x.FromParts(hi, m.sampleIID(r))
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		out = append(out, addr)
	}
	return out
}
