package targetgen

import (
	"net/netip"
	"testing"

	"ntpscan/internal/ipv6x"
	"ntpscan/internal/rng"
)

func structuredSeed(prefix uint64, last byte) netip.Addr {
	return ipv6x.FromParts(prefix, uint64(last))
}

func privacySeed(prefix uint64, r *rng.Stream) netip.Addr {
	return ipv6x.FromParts(prefix, r.Uint64())
}

func TestTrainCountsSeeds(t *testing.T) {
	r := rng.New(1)
	var seeds []netip.Addr
	for i := 0; i < 50; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00000000, byte(i+1)))
	}
	for i := 0; i < 50; i++ {
		seeds = append(seeds, privacySeed(0x20010db8_00010000, r))
	}
	m := Train(seeds)
	if m.SeedCount() != 100 {
		t.Fatalf("SeedCount = %d", m.SeedCount())
	}
	share := m.LearnableShare()
	if share < 0.4 || share > 0.6 {
		t.Fatalf("LearnableShare = %v, want ~0.5", share)
	}
	if m.Prefixes() != 2 {
		t.Fatalf("Prefixes = %d", m.Prefixes())
	}
}

func TestTrainIgnoresIPv4(t *testing.T) {
	m := Train([]netip.Addr{netip.MustParseAddr("192.0.2.1")})
	if m.SeedCount() != 0 {
		t.Fatal("IPv4 seed counted")
	}
	if got := m.Generate(5, 1); len(got) != 0 {
		t.Fatalf("empty model generated %d candidates", len(got))
	}
}

func TestGenerateStaysInLearnedPrefixes(t *testing.T) {
	var seeds []netip.Addr
	for i := 0; i < 30; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00000000, byte(i+1)))
	}
	m := Train(seeds)
	for _, c := range m.Generate(100, 2) {
		hi, _ := ipv6x.Parts(c)
		if hi != 0x20010db8_00000000 {
			t.Fatalf("candidate %v outside learned prefix", c)
		}
	}
}

func TestGenerateRecoversStructure(t *testing.T) {
	// Seeds are ::1..::40 in one prefix: generated identifiers must be
	// small structured values, not random 64-bit noise.
	var seeds []netip.Addr
	for i := 0; i < 64; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00000000, byte(i+1)))
	}
	m := Train(seeds)
	for _, c := range m.Generate(50, 3) {
		if ipv6x.IID(c) > 0xff {
			t.Fatalf("candidate %v does not match seed structure", c)
		}
	}
}

func TestGenerateDeduplicates(t *testing.T) {
	var seeds []netip.Addr
	for i := 0; i < 8; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00000000|uint64(i)<<16, byte(i+1)))
	}
	m := Train(seeds)
	got := m.Generate(40, 4)
	seen := map[netip.Addr]bool{}
	for _, c := range got {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var seeds []netip.Addr
	for i := 0; i < 20; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00000000, byte(i+1)))
	}
	a := Train(seeds).Generate(20, 9)
	b := Train(seeds).Generate(20, 9)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs", i)
		}
	}
}

func TestLearnableShareLowForPrivacySeeds(t *testing.T) {
	// The experiment's punchline: a model trained on privacy-heavy
	// eyeball data has almost nothing to learn from.
	r := rng.New(7)
	var seeds []netip.Addr
	for i := 0; i < 500; i++ {
		seeds = append(seeds, privacySeed(0x20010db8_00000000|uint64(i)<<16, r))
	}
	m := Train(seeds)
	if share := m.LearnableShare(); share > 0.05 {
		t.Fatalf("LearnableShare = %v for pure privacy seeds", share)
	}
}

func TestPrefixWeighting(t *testing.T) {
	// A prefix observed 10x more often should dominate generation.
	var seeds []netip.Addr
	for i := 0; i < 100; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00000000, byte(i%200+1)))
	}
	for i := 0; i < 10; i++ {
		seeds = append(seeds, structuredSeed(0x20010db8_00010000, byte(i+1)))
	}
	m := Train(seeds)
	dense := 0
	cands := m.Generate(200, 5)
	for _, c := range cands {
		if hi, _ := ipv6x.Parts(c); hi == 0x20010db8_00000000 {
			dense++
		}
	}
	if dense < len(cands)/2 {
		t.Fatalf("dense prefix got %d of %d candidates", dense, len(cands))
	}
}
