package obs_test

// Link-layer conservation laws: the queued-link emulation in
// internal/netsim/link keeps books that must balance after any
// campaign — every enqueued packet is delivered, tail-dropped, or
// churn-dropped, and the sojourn/depth histograms count exactly the
// outcomes that observed them. The telemetry stream carrying the
// link_* families is part of the deterministic output surface, so it
// must not move across worker counts or across a resume.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/core"
	"ntpscan/internal/netsim/link"
)

// runLinkCampaign runs a congested-fabric campaign for a seed and
// spec and returns the pipeline plus its telemetry stream.
func runLinkCampaign(t *testing.T, seed uint64, workers int, spec chaos.Spec) (*core.Pipeline, *bytes.Buffer) {
	t.Helper()
	cfg := chaos.Config(seed)
	cfg.Workers = workers
	p := chaos.FaultedPipeline(cfg, seed+1, spec)
	var tel bytes.Buffer
	if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Telemetry: &tel}); err != nil {
		t.Fatal(err)
	}
	return p, &tel
}

func TestLinkConservationUnderCongestion(t *testing.T) {
	specs := []struct {
		name string
		spec chaos.Spec
		// Saturated queues (utilization 1.0) never drain, so every
		// admission tail-drops; the merely congested plan delivers too.
		saturated bool
	}{
		{"congested", chaos.CongestedSpec(), false},
		{"saturated", chaos.SaturatedSpec(), true},
	}
	for _, tc := range specs {
		tc := tc
		for _, seed := range chaos.Seeds() {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				p, _ := runLinkCampaign(t, seed, 8, tc.spec)

				// NewMetrics is get-or-create on the registry, so this
				// re-fetches the exact handles the fabric accounted on.
				lm := link.NewMetrics(p.Obs)

				enqueued := lm.Enqueued.Value()
				delivered := lm.Delivered.Value()
				tail := lm.DroppedTail.Value()
				churn := lm.DroppedChurn.Value()
				late := lm.Late.Value()
				if enqueued == 0 {
					t.Fatal("saturated campaign never traversed an emulated link")
				}

				// Packet conservation: every enqueued packet has exactly one
				// fate — delivered, tail-dropped, or dropped by a withdrawn
				// route. Nothing is lost, nothing double-counted.
				if enqueued != delivered+tail+churn {
					t.Errorf("link conservation violated: enqueued %d != delivered %d + tail %d + churn %d",
						enqueued, delivered, tail, churn)
				}

				// Sojourn is observed for delivered packets only; depth is
				// observed for every packet that reached queue admission
				// (delivered or tail-dropped — churn drops never queue).
				if n := lm.Sojourn.Count(); n != delivered {
					t.Errorf("sojourn histogram count %d != delivered %d", n, delivered)
				}
				if n := lm.Depth.Count(); n != delivered+tail {
					t.Errorf("depth histogram count %d != delivered %d + tail-dropped %d", n, delivered, tail)
				}

				// Late packets are a subset of deliveries: a packet that
				// missed its patience still cleared the queue.
				if late > delivered {
					t.Errorf("link_late_total %d > link_delivered_total %d", late, delivered)
				}

				// The plan must actually bite.
				if tc.saturated {
					if tail == 0 {
						t.Error("utilization-1.0 plan never tail-dropped a packet")
					}
				} else if delivered == 0 {
					t.Error("utilization-0.9 plan never delivered a packet")
				}
				if churnEvents := lm.ChurnEvents.Value(); churnEvents == 0 {
					t.Error("plan schedules route churn but no churn event was booked")
				} else if churn == 0 {
					t.Error("route churn fired but no packet was dropped on a withdrawn prefix")
				}
				t.Logf("link books: enqueued %d, delivered %d, tail %d, churn %d, late %d",
					enqueued, delivered, tail, churn, late)
			})
		}
	}
}

// The link_* families ride the same per-slice telemetry stream as
// everything else, and Workers is pure concurrency: the bytes must not
// move, and every slice record must carry the link series.
func TestLinkTelemetryIdenticalAcrossWorkers(t *testing.T) {
	seed := chaos.Seeds()[0]
	_, base := runLinkCampaign(t, seed, 1, chaos.SaturatedSpec())
	if base.Len() == 0 {
		t.Fatal("no telemetry produced")
	}
	lines := bytes.Split(bytes.TrimSuffix(base.Bytes(), []byte("\n")), []byte("\n"))
	var last struct {
		Metrics map[string]int64 `json:"metrics"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"link_enqueued_total", "link_delivered_total", "link_dropped_tail_total",
		"link_dropped_churn_total", "link_late_total", "link_churn_events_total",
		"link_withdrawn_prefixes",
	} {
		if _, ok := last.Metrics[key]; !ok {
			t.Errorf("telemetry final slice missing series %q", key)
		}
	}
	for _, workers := range []int{3, 8} {
		_, tel := runLinkCampaign(t, seed, workers, chaos.SaturatedSpec())
		if !bytes.Equal(tel.Bytes(), base.Bytes()) {
			t.Errorf("workers=%d congested telemetry diverges from workers=1 (%d vs %d bytes)",
				workers, tel.Len(), base.Len())
		}
	}
}

// A resumed congested campaign continues the telemetry byte-for-byte:
// the checkpoint snapshot carries the link counters, and the resumed
// run replays the same pure-hash queue outcomes from the resume slice
// onward.
func TestLinkTelemetryByteExactAcrossResume(t *testing.T) {
	seed := chaos.Seeds()[0]
	spec := chaos.SaturatedSpec()

	var fullTel, fullOut bytes.Buffer
	var cps []*core.Checkpoint
	p1 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, spec)
	if _, err := p1.RunCampaign(context.Background(), core.CampaignOpts{
		Out:             &fullOut,
		Telemetry:       &fullTel,
		CheckpointEvery: 24,
		OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("expected >=2 checkpoints, got %d", len(cps))
	}

	blob, err := json.Marshal(cps[1])
	if err != nil {
		t.Fatal(err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		t.Fatal(err)
	}

	var restTel, restOut bytes.Buffer
	p2 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, spec)
	if _, err := p2.ResumeCampaign(context.Background(), &cp, core.CampaignOpts{
		Out:             &restOut,
		Telemetry:       &restTel,
		CheckpointEvery: 24,
		OnCheckpoint:    func(*core.Checkpoint) {},
	}); err != nil {
		t.Fatal(err)
	}

	lines := bytes.SplitAfter(fullTel.Bytes(), []byte("\n"))
	var want bytes.Buffer
	for _, ln := range lines[cp.NextSlice:] {
		want.Write(ln)
	}
	if !bytes.Equal(restTel.Bytes(), want.Bytes()) {
		t.Fatalf("resumed congested telemetry diverges: %d bytes vs %d expected", restTel.Len(), want.Len())
	}
}
