package obs

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "x")
	b := r.NewCounter("x_total", "x")
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Fatalf("second registration got its own storage: %d", got)
	}
	v1 := r.NewCounterVec("v_total", "v", "k", []string{"p", "q"})
	v2 := r.NewCounterVec("v_total", "v", "k", []string{"p", "q"})
	v1.Inc(1)
	if got := v2.Value(1); got != 1 {
		t.Fatalf("vec re-registration got its own storage: %d", got)
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.NewGauge("m", "m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_ms", "latency", []int64{10, 20})
	for _, v := range []int64{5, 10, 15, 20, 25} {
		h.Observe(v)
	}
	// Bounds are inclusive: 10 lands in le=10, 20 in le=20, 25 overflows.
	m := h.m
	got := []int64{m.counts[0].Load(), m.counts[1].Load(), m.counts[2].Load()}
	if want := []int64{2, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket counts %v, want %v", got, want)
	}
	if h.Count() != 5 || h.Sum() != 75 {
		t.Fatalf("count=%d sum=%d, want 5/75", h.Count(), h.Sum())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	build := func() (*Registry, *Counter, *Gauge, *Histogram) {
		r := NewRegistry()
		c := r.NewCounter("c_total", "c")
		g := r.NewGauge("g", "g")
		h := r.NewHistogram("h_ms", "h", []int64{1, 10})
		return r, c, g, h
	}
	r1, c, g, h := build()
	c.Add(7)
	g.Set(-2)
	h.Observe(5)
	h.Observe(50)

	// Through JSON, like a checkpoint on disk.
	blob, err := json.Marshal(r1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}

	r2, _, _, _ := build()
	r2.Restore(snap)
	if !reflect.DeepEqual(r2.Snapshot(), r1.Snapshot()) {
		t.Fatalf("round-trip diverged:\n got %v\nwant %v", r2.Snapshot(), r1.Snapshot())
	}
}

func TestRestorePendingAppliesAtRegistration(t *testing.T) {
	// A resumed campaign restores the checkpoint before the scanner —
	// and the scanner's metrics — are built: values must wait for the
	// registration and land then.
	r := NewRegistry()
	r.Restore(Snapshot{"late_total": {42}})
	c := r.NewCounter("late_total", "late")
	if got := c.Value(); got != 42 {
		t.Fatalf("pending restore not applied at registration: %d", got)
	}
}

func TestSnapshotJSONSortedAndStable(t *testing.T) {
	s := Snapshot{"b": {2}, "a": {1}, "c": {3}}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"a":[1],"b":[2],"c":[3]}`; string(b1) != want {
		t.Fatalf("snapshot JSON %s, want %s", b1, want)
	}
}

func TestRegistryValue(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("s_total", "s").Add(4)
	r.NewCounterVec("v_total", "v", "k", []string{"x", "y"}).Add(1, 9)
	r.NewHistogram("h_ms", "h", []int64{10}).Observe(3)

	for key, want := range map[string]int64{
		"s_total":            4,
		"v_total{k=y}":       9,
		"h_ms_count":         1,
		"h_ms_sum":           3,
		"h_ms_bucket{le=10}": 1,
	} {
		if got, ok := r.Value(key); !ok || got != want {
			t.Errorf("Value(%q) = %d,%v, want %d", key, got, ok, want)
		}
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value found a series that was never registered")
	}
}

// manualClock is a minimal logical clock for timer tests.
type manualClock struct{ now time.Time }

func (c *manualClock) Now() time.Time { return c.now }

func TestTimerRecordsLogicalTime(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("wait_ms", "wait", []int64{10, 100})
	clk := &manualClock{now: time.Unix(1000, 0)}

	tm := StartTimer(h, clk)
	tm.Stop() // frozen clock: exactly 0 elapsed
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("frozen-clock timer recorded sum=%d count=%d, want 0/1", h.Sum(), h.Count())
	}

	tm = StartTimer(h, clk)
	clk.now = clk.now.Add(42 * time.Millisecond)
	tm.Stop()
	if h.Sum() != 42 {
		t.Fatalf("timer recorded %d ms, want 42", h.Sum())
	}
}
