package obs_test

// The observability layer as a correctness oracle: after every chaos
// scenario the metric books must balance. These tests run the same
// campaigns as internal/chaos (via its exported hooks) and assert the
// conservation laws documented in DESIGN.md "Observability", plus the
// determinism contract: the per-slice telemetry stream is byte-
// identical across worker counts and across a checkpoint resume.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/core"
	"ntpscan/internal/world"
)

func value(t *testing.T, p *core.Pipeline, key string) int64 {
	t.Helper()
	v, ok := p.Obs.Value(key)
	if !ok {
		t.Fatalf("metric series %q not registered", key)
	}
	return v
}

// runChaosCampaign runs the canonical faulted campaign for a seed and
// returns the pipeline (post-publish) plus its telemetry stream.
func runChaosCampaign(t *testing.T, seed uint64, workers int) (*core.Pipeline, *bytes.Buffer) {
	t.Helper()
	cfg := chaos.Config(seed)
	cfg.Workers = workers
	p := chaos.FaultedPipeline(cfg, seed+1, chaos.DefaultSpec())
	var tel bytes.Buffer
	if _, err := p.RunCampaign(context.Background(), core.CampaignOpts{Telemetry: &tel}); err != nil {
		t.Fatal(err)
	}
	return p, &tel
}

func TestConservationInvariantsUnderChaos(t *testing.T) {
	for _, seed := range chaos.Seeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p, tel := runChaosCampaign(t, seed, 8)

			// Target conservation: every submitted target is suppressed,
			// shed, or completed — nothing in flight at quiescence,
			// nothing lost, nothing double-counted.
			submitted := value(t, p, "scan_submitted_total")
			suppressed := value(t, p, "scan_suppressed_total")
			shed := value(t, p, "scan_shed_total")
			completed := value(t, p, "scan_completed_total")
			if submitted == 0 {
				t.Fatal("campaign submitted nothing")
			}
			if submitted != suppressed+shed+completed {
				t.Errorf("scan conservation violated: submitted %d != suppressed %d + shed %d + completed %d",
					submitted, suppressed, shed, completed)
			}

			// The campaign submits exactly the capture feed.
			captures := value(t, p, "campaign_captures_total")
			if submitted != captures {
				t.Errorf("feed conservation violated: submitted %d != captures %d", submitted, captures)
			}
			if captures != int64(p.Captures) {
				t.Errorf("captures metric %d != published Captures %d", captures, p.Captures)
			}

			// Every capture is one answered NTP request (the capture
			// hook fires only on answered requests), and no answer goes
			// missing between the server and the accumulator.
			answered := value(t, p, "ntp_answered_total")
			if answered != captures {
				t.Errorf("ntp_answered_total %d != campaign_captures_total %d", answered, captures)
			}
			if requests := value(t, p, "ntp_requests_total"); requests < answered {
				t.Errorf("ntp_requests_total %d < ntp_answered_total %d", requests, answered)
			}

			// Per-vantage first-seen counters mirror the published
			// PerCountry table exactly.
			for country, n := range p.PerCountry {
				key := "capture_distinct_total{vantage=" + country + "}"
				if got := value(t, p, key); got != int64(n) {
					t.Errorf("%s = %d, want PerCountry %d", key, got, n)
				}
			}

			// Breaker pairing: every open prefix was opened (or
			// reopened) and not yet admitted to probation; once it is,
			// the books re-balance. At quiescence the net equals the
			// open-set gauge.
			opened := value(t, p, "breaker_opened_total")
			reopened := value(t, p, "breaker_reopened_total")
			probation := value(t, p, "breaker_probation_total")
			openGauge := value(t, p, "breaker_open")
			if opened+reopened-probation != openGauge {
				t.Errorf("breaker pairing violated: opened %d + reopened %d - probation %d != open %d",
					opened, reopened, probation, openGauge)
			}
			if shed > 0 && opened == 0 {
				t.Errorf("scanner shed %d targets but no breaker ever opened", shed)
			}

			// Pool health pairing: degradations not yet recovered are
			// exactly the servers unhealthy at the end.
			degraded := value(t, p, "pool_degraded_total")
			recovered := value(t, p, "pool_recovered_total")
			unhealthy := int64(0)
			for _, vs := range p.Servers {
				if !p.Pool.Healthy(vs.ID) {
					unhealthy++
				}
			}
			if degraded-recovered != unhealthy {
				t.Errorf("pool pairing violated: degraded %d - recovered %d != unhealthy %d",
					degraded, recovered, unhealthy)
			}
			// One health probe per vantage per slice.
			if checks := value(t, p, "pool_checks_total"); checks != int64(96*len(p.Servers)) {
				t.Errorf("pool_checks_total = %d, want %d", checks, 96*len(p.Servers))
			}
			if slices := value(t, p, "campaign_slices_total"); slices != 96 {
				t.Errorf("campaign_slices_total = %d, want 96", slices)
			}

			// Arena conservation: every device still resident in a shard
			// arena was materialized and never evicted, so the counters
			// and the resident-bytes gauge must agree slot-for-slot. Any
			// lookup is either a hit or a materialization, so the
			// campaign touching devices at all implies materializations.
			mat := value(t, p, "world_arena_materializations_total")
			evict := value(t, p, "world_arena_evictions_total")
			residentBytes := value(t, p, "world_arena_resident_bytes")
			if mat == 0 {
				t.Error("campaign captured devices but arenas never materialized one")
			}
			if residentBytes%int64(world.SlotBytes()) != 0 {
				t.Errorf("world_arena_resident_bytes %d is not a multiple of the %d-byte slot size",
					residentBytes, world.SlotBytes())
			}
			if resident := residentBytes / int64(world.SlotBytes()); mat-evict != resident {
				t.Errorf("arena conservation violated: materializations %d - evictions %d != resident slots %d",
					mat, evict, resident)
			}

			// Fault bookkeeping (vantage outages surface as capture
			// drops — the sync dies at the health check, before the
			// fabric). Not every seed's plan intersects the sampled
			// population at chaos scale, so zero activity is legal; the
			// count is logged so a silent matrix is at least visible.
			faultActivity := value(t, p, "fault_udp_drops_total") +
				value(t, p, "fault_dial_blackholes_total") +
				value(t, p, "fault_garbles_total")
			for _, v := range p.Obs.Snapshot()["capture_dropped_total"] {
				faultActivity += v
			}
			t.Logf("recorded fault interventions: %d", faultActivity)

			// The telemetry stream is one valid JSON object per slice,
			// with monotonically non-decreasing counters.
			lines := bytes.Split(bytes.TrimSuffix(tel.Bytes(), []byte("\n")), []byte("\n"))
			if len(lines) != 96 {
				t.Fatalf("telemetry has %d lines, want 96", len(lines))
			}
			prev := int64(-1)
			for i, ln := range lines {
				var rec struct {
					Slice   int              `json:"slice"`
					Metrics map[string]int64 `json:"metrics"`
				}
				if err := json.Unmarshal(ln, &rec); err != nil {
					t.Fatalf("telemetry line %d is not valid JSON: %v", i, err)
				}
				if rec.Slice != i {
					t.Fatalf("telemetry line %d reports slice %d", i, rec.Slice)
				}
				if c := rec.Metrics["campaign_captures_total"]; c < prev {
					t.Fatalf("captures counter went backwards at slice %d: %d < %d", i, c, prev)
				} else {
					prev = c
				}
			}
		})
	}
}

// The cluster's task-conservation law, under the canonical node-loss
// schedule: every shard-slice task the coordinator dispatches is
// accounted for exactly once —
//
//	cluster_tasks_claimed_total == cluster_tasks_completed_total
//	                             + cluster_epoch_rejections_total
//	                             + cluster_tasks_lost_total
//
// with cluster_tasks_inflight zero at quiescence, completed exactly
// slices x shards (each shard-slice committed once, whatever was
// fenced or lost on the way), and the campaign's own telemetry stream
// byte-identical to the single-process run — the cluster keeps its
// books on its own registry.
func TestClusterTaskConservationUnderNodeLoss(t *testing.T) {
	for _, seed := range chaos.Seeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, baseTel := runChaosCampaign(t, seed, 8)

			var tel bytes.Buffer
			p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.NodeLossSpec(3, 1))
			_, coord, err := cluster.Run(context.Background(), p, cluster.Config{Nodes: 3},
				core.CampaignOpts{Telemetry: &tel})
			if err != nil {
				t.Fatal(err)
			}

			snap := coord.Obs.Snapshot()
			series := func(key string) int64 {
				vals, ok := snap[key]
				if !ok {
					t.Fatalf("cluster metric series %q not registered", key)
				}
				var s int64
				for _, v := range vals {
					s += v
				}
				return s
			}
			claimed := series("cluster_tasks_claimed_total")
			completed := series("cluster_tasks_completed_total")
			fenced := series("cluster_epoch_rejections_total")
			lost := series("cluster_tasks_lost_total")
			fallback := series("cluster_coordinator_fallbacks_total")
			if claimed == 0 {
				t.Fatal("cluster dispatched nothing")
			}
			if claimed != completed+fenced+lost {
				t.Errorf("cluster task conservation violated: claimed %d != completed %d + fenced %d + lost %d",
					claimed, completed, fenced, lost)
			}
			slices := value(t, p, "campaign_slices_total")
			if want := slices * int64(p.Cfg.CollectShards); completed+fallback != want {
				t.Errorf("committed executions %d (completed %d + fallback %d), want slices x shards = %d",
					completed+fallback, completed, fallback, want)
			}
			if inflight := series("cluster_tasks_inflight"); inflight != 0 {
				t.Errorf("cluster_tasks_inflight = %d at quiescence, want 0", inflight)
			}
			if hb, missed := series("cluster_heartbeats_total"), series("cluster_heartbeats_missed_total"); hb+missed != slices*3 {
				t.Errorf("heartbeat books: %d arrived + %d missed != slices x nodes = %d", hb, missed, slices*3)
			}
			if !bytes.Equal(tel.Bytes(), baseTel.Bytes()) {
				t.Errorf("clustered campaign telemetry diverges from single-process run (%d vs %d bytes)",
					tel.Len(), baseTel.Len())
			}
		})
	}
}

// The telemetry stream is part of the deterministic output surface:
// Workers is pure concurrency, so the bytes must not move.
func TestTelemetryIdenticalAcrossWorkers(t *testing.T) {
	for _, seed := range chaos.Seeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, base := runChaosCampaign(t, seed, 1)
			if base.Len() == 0 {
				t.Fatal("no telemetry produced")
			}
			for _, workers := range []int{3, 8} {
				_, tel := runChaosCampaign(t, seed, workers)
				if !bytes.Equal(tel.Bytes(), base.Bytes()) {
					t.Errorf("workers=%d telemetry diverges from workers=1 (%d vs %d bytes)",
						workers, tel.Len(), base.Len())
				}
			}
		})
	}
}

// A resumed campaign's telemetry continues the interrupted run's
// byte-for-byte: the checkpoint carries the registry snapshot, and the
// resumed run (same opts, same cadence) emits exactly the lines the
// uninterrupted run wrote from the resume slice onward.
func TestTelemetryByteExactAcrossResume(t *testing.T) {
	seed := chaos.Seeds()[0]
	spec := chaos.DefaultSpec()

	var fullTel, fullOut bytes.Buffer
	var cps []*core.Checkpoint
	opts := core.CampaignOpts{
		Out:             &fullOut,
		Telemetry:       &fullTel,
		CheckpointEvery: 24,
		OnCheckpoint:    func(cp *core.Checkpoint) { cps = append(cps, cp) },
	}
	p1 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, spec)
	if _, err := p1.RunCampaign(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("expected >=2 checkpoints, got %d", len(cps))
	}

	// Round-trip through JSON like a real kill+resume.
	blob, err := json.Marshal(cps[1])
	if err != nil {
		t.Fatal(err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		t.Fatal(err)
	}

	var restTel, restOut bytes.Buffer
	p2 := chaos.FaultedPipeline(chaos.Config(seed), seed+1, spec)
	_, err = p2.ResumeCampaign(context.Background(), &cp, core.CampaignOpts{
		Out:             &restOut,
		Telemetry:       &restTel,
		CheckpointEvery: 24,
		OnCheckpoint:    func(*core.Checkpoint) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	lines := bytes.SplitAfter(fullTel.Bytes(), []byte("\n"))
	var want bytes.Buffer
	for _, ln := range lines[cp.NextSlice:] {
		want.Write(ln)
	}
	if !bytes.Equal(restTel.Bytes(), want.Bytes()) {
		t.Fatalf("resumed telemetry diverges: %d bytes vs %d expected", restTel.Len(), want.Len())
	}
}
