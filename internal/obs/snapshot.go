package obs

import (
	"encoding/json"
	"sort"
)

// Snapshot is the registry's state as plain data: metric name → raw
// value array (scalar/vec values in registration order; histograms:
// per-bucket counts then the sum). It marshals with sorted keys so
// checkpoint bytes are a pure function of the state.
type Snapshot map[string][]int64

// MarshalJSON implements json.Marshaler with deterministic key order.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, 32*len(keys))
	buf = append(buf, '{')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(s[k])
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
	}
	return append(buf, '}'), nil
}

// Snapshot exports every registered metric's raw values. Take it from
// a quiescent point (the campaign's drain barrier) — mid-flight
// atomics would still be racing.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, len(r.metrics))
	for _, m := range r.metrics {
		out[m.name] = m.raw()
	}
	return out
}

// Restore loads a snapshot. Values for metrics not yet registered are
// kept pending and applied when the metric registers (a resumed
// campaign restores its checkpoint before the scanner — and the
// scanner's metrics — are built). Shape mismatches are dropped whole.
func (r *Registry) Restore(s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, raw := range s {
		if m := r.byName[name]; m != nil {
			m.load(raw)
			continue
		}
		if r.pending == nil {
			r.pending = make(map[string][]int64)
		}
		r.pending[name] = append([]int64(nil), raw...)
	}
}
