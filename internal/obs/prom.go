package obs

import (
	"io"
	"sort"
	"strconv"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Metric families are emitted in name order and
// series within a family in registration order, so the output is
// byte-stable for a given state — the golden test diffs it verbatim.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	var buf []byte
	for _, m := range metrics {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.kind.String()...)
		buf = append(buf, '\n')
		switch {
		case m.kind == KindHistogram:
			var cum int64
			for i := range m.counts {
				cum += m.counts[i].Load()
				buf = append(buf, m.name...)
				buf = append(buf, `_bucket{le="`...)
				if i < len(m.bounds) {
					buf = strconv.AppendInt(buf, m.bounds[i], 10)
				} else {
					buf = append(buf, "+Inf"...)
				}
				buf = append(buf, `"} `...)
				buf = strconv.AppendInt(buf, cum, 10)
				buf = append(buf, '\n')
			}
			buf = append(buf, m.name...)
			buf = append(buf, "_sum "...)
			buf = strconv.AppendInt(buf, m.sum.Load(), 10)
			buf = append(buf, '\n')
			buf = append(buf, m.name...)
			buf = append(buf, "_count "...)
			buf = strconv.AppendInt(buf, cum, 10)
			buf = append(buf, '\n')
		case len(m.labelVals) > 0:
			for i, lv := range m.labelVals {
				buf = append(buf, m.name...)
				buf = append(buf, '{')
				buf = append(buf, m.label...)
				buf = append(buf, `="`...)
				buf = append(buf, lv...)
				buf = append(buf, `"} `...)
				buf = strconv.AppendInt(buf, m.vals[i].Load(), 10)
				buf = append(buf, '\n')
			}
		default:
			buf = append(buf, m.name...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, m.vals[0].Load(), 10)
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
