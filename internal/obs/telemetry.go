package obs

import (
	"io"
	"sort"
	"strconv"
	"time"
)

// series is one flattened (key, value) sample. Keys follow the
// Prometheus series notation without quotes — `name{label=VAL}`,
// `name_bucket{le=N}` — so telemetry lines stay greppable without
// JSON-escaped quote noise.
type series struct {
	key string
	val int64
}

// flatten expands every metric into its series samples. Histogram
// buckets are cumulative, mirroring the exposition format.
func (r *Registry) flatten() []series {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	var out []series
	for _, m := range metrics {
		switch {
		case m.kind == KindHistogram:
			var cum int64
			for i := range m.counts {
				cum += m.counts[i].Load()
				le := "+Inf"
				if i < len(m.bounds) {
					le = strconv.FormatInt(m.bounds[i], 10)
				}
				out = append(out, series{m.name + "_bucket{le=" + le + "}", cum})
			}
			out = append(out, series{m.name + "_sum", m.sum.Load()})
			out = append(out, series{m.name + "_count", cum})
		case len(m.labelVals) > 0:
			for i, lv := range m.labelVals {
				out = append(out, series{m.name + "{" + m.label + "=" + lv + "}", m.vals[i].Load()})
			}
		default:
			out = append(out, series{m.name, m.vals[0].Load()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// TelemetryWriter emits one JSONL line per campaign slice with the full
// registry state: sorted series keys, int64 values, logical timestamps
// — byte-identical across worker counts and across a checkpoint resume
// (the resumed registry continues from the checkpointed values).
type TelemetryWriter struct {
	r   *Registry
	w   io.Writer
	buf []byte
}

// NewTelemetryWriter returns a per-slice telemetry stream over w.
func NewTelemetryWriter(r *Registry, w io.Writer) *TelemetryWriter {
	return &TelemetryWriter{r: r, w: w}
}

// WriteSlice emits the slice's telemetry line. Call from a quiescent
// point (the drain barrier): no metric may be mid-update.
func (t *TelemetryWriter) WriteSlice(slice int, at time.Time) error {
	b := t.buf[:0]
	b = append(b, `{"slice":`...)
	b = strconv.AppendInt(b, int64(slice), 10)
	b = append(b, `,"time":"`...)
	b = at.UTC().AppendFormat(b, time.RFC3339)
	b = append(b, `","metrics":{`...)
	for i, s := range t.r.flatten() {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, s.key...) // keys are metric identifiers: no JSON escaping needed
		b = append(b, `":`...)
		b = strconv.AppendInt(b, s.val, 10)
	}
	b = append(b, "}}\n"...)
	t.buf = b
	_, err := t.w.Write(b)
	return err
}

// Value returns a named series' current value (the invariant tests'
// read API): scalar/vec metrics by flattened key, histograms via their
// _sum/_count/_bucket series.
func (r *Registry) Value(key string) (int64, bool) {
	for _, s := range r.flatten() {
		if s.key == key {
			return s.val, true
		}
	}
	return 0, false
}
