package obs

import (
	"testing"
	"time"
)

// zeroClock is a zero-size Clock: interface conversion allocates
// nothing, mirroring how the scanner passes netsim's clock around.
type zeroClock struct{}

func (zeroClock) Now() time.Time { return time.Unix(0, 0) }

// The capture/scan fast paths increment metrics per event; the whole
// point of dense preallocated storage is that those updates never
// allocate. This pins it.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	vec := r.NewCounterVec("v_total", "v", "k", []string{"a", "b", "c"})
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h_ms", "h", []int64{1, 10, 100, 1000})
	clk := zeroClock{}

	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"CounterVec.Inc":    func() { vec.Inc(1) },
		"CounterVec.Add":    func() { vec.Add(2, 5) },
		"Gauge.Set":         func() { g.Set(7) },
		"Histogram.Observe": func() { h.Observe(42) },
		"Timer":             func() { tm := StartTimer(h, clk); tm.Stop() },
	} {
		if n := testing.AllocsPerRun(1000, fn); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, n)
		}
	}
}
