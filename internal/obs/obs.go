// Package obs is the pipeline's deterministic observability layer:
// counters, gauges, and fixed-bucket histograms registered by dense
// index on a Registry, with logical-clock-aware timers so every timing
// is derived from the experiment's injected clock rather than wall
// time.
//
// Design rules (see DESIGN.md "Observability"):
//
//   - Hot-path updates are single atomic adds on preallocated dense
//     slices — no map lookups, no allocation, no locks. Vec metrics are
//     indexed by the caller's existing dense index (VantageServer.idx,
//     the module slot) and carry the label only for exposition.
//   - Every value is an int64. Observations that are durations are
//     recorded in milliseconds of *logical* time, so a snapshot is a
//     pure function of the experiment definition: the same (seed,
//     shards, fault plan) yields byte-identical snapshots at any worker
//     count.
//   - Registration is get-or-create: a second registration of the same
//     name returns the same metric (the campaign and hitlist scanners
//     share one registry), and re-registering with a different shape
//     panics — silent divergence is the one thing an oracle must not do.
//   - The whole registry snapshots to (and restores from) plain data,
//     so metrics ride along in campaign checkpoints and a resumed run's
//     telemetry continues the interrupted run's byte-for-byte.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal clock surface obs needs (netsim.Clock satisfies
// it). Timers read logical time through it.
type Clock interface {
	Now() time.Time
}

// Kind discriminates metric shapes.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in the Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered family: a scalar (len(vals)==1), a dense
// label vector, or a histogram.
type metric struct {
	name string
	help string
	kind Kind

	// label/labelVals describe the vector dimension ("" for scalars).
	// The value slice is preallocated at registration and never grows:
	// hot paths index it, they never hash.
	label     string
	labelVals []string
	vals      []atomic.Int64

	// Histogram state: bounds are inclusive upper bounds in the
	// metric's native unit; counts has len(bounds)+1 (last = overflow).
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
}

// Registry holds registered metrics. All methods are safe for
// concurrent use; the returned handles are the hot-path API.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
	// pending holds restored raw values for series not yet registered
	// (a resumed campaign restores the checkpoint before the scanner —
	// and its metrics — exist). Applied at registration.
	pending map[string][]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register is the get-or-create core. Shape mismatches panic: an
// observability layer that silently forked a metric would corrupt the
// very invariants it exists to check.
func (r *Registry) register(name, help string, kind Kind, label string, labelVals []string, bounds []int64) *metric {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byName[name]; m != nil {
		if m.kind != kind || m.label != label ||
			len(m.labelVals) != len(labelVals) || len(m.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, label: label}
	if kind == KindHistogram {
		m.bounds = append([]int64(nil), bounds...)
		for i := 1; i < len(m.bounds); i++ {
			if m.bounds[i] <= m.bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not increasing", name))
			}
		}
		m.counts = make([]atomic.Int64, len(m.bounds)+1)
	} else if len(labelVals) > 0 {
		m.labelVals = append([]string(nil), labelVals...)
		m.vals = make([]atomic.Int64, len(labelVals))
	} else {
		m.vals = make([]atomic.Int64, 1)
	}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	if raw, ok := r.pending[name]; ok {
		m.load(raw)
		delete(r.pending, name)
	}
	return m
}

// load installs raw snapshot values (see raw) onto the metric. Length
// mismatches are ignored wholesale: a checkpoint from a different
// configuration must not half-apply.
func (m *metric) load(raw []int64) {
	if m.kind == KindHistogram {
		if len(raw) != len(m.counts)+1 {
			return
		}
		for i := range m.counts {
			m.counts[i].Store(raw[i])
		}
		m.sum.Store(raw[len(raw)-1])
		return
	}
	if len(raw) != len(m.vals) {
		return
	}
	for i := range m.vals {
		m.vals[i].Store(raw[i])
	}
}

// raw exports the metric's values as a flat int64 slice (histograms:
// per-bucket counts then the sum).
func (m *metric) raw() []int64 {
	if m.kind == KindHistogram {
		out := make([]int64, len(m.counts)+1)
		for i := range m.counts {
			out[i] = m.counts[i].Load()
		}
		out[len(out)-1] = m.sum.Load()
		return out
	}
	out := make([]int64, len(m.vals))
	for i := range m.vals {
		out[i] = m.vals[i].Load()
	}
	return out
}

// Counter is a monotonically increasing scalar.
type Counter struct{ v *atomic.Int64 }

// NewCounter registers (or fetches) a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	m := r.register(name, help, KindCounter, "", nil, nil)
	return &Counter{v: &m.vals[0]}
}

// LocalCounter returns a free-standing counter attached to no
// registry: a private accumulation buffer whose owner folds it into a
// registered family (and zeroes it with Take) at a synchronisation
// point. Collection shards use these so hot-path increments stay off
// shared cachelines and an execution can be discarded — buffered
// counts dropped — before anything global saw them.
func LocalCounter() *Counter { return &Counter{v: new(atomic.Int64)} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only move forward).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Take reads the current count and resets it to zero — the fold-and-
// clear primitive behind LocalCounter buffers.
func (c *Counter) Take() int64 { return c.v.Swap(0) }

// CounterVec is a dense vector of counters over a fixed label set. The
// index space is the caller's existing dense index; Inc/Add perform one
// atomic add with no hashing.
type CounterVec struct{ vals []atomic.Int64 }

// NewCounterVec registers (or fetches) a counter vector with the given
// label key and the full, fixed set of label values.
func (r *Registry) NewCounterVec(name, help, label string, labelVals []string) *CounterVec {
	if len(labelVals) == 0 {
		panic(fmt.Sprintf("obs: counter vec %q needs label values", name))
	}
	m := r.register(name, help, KindCounter, label, labelVals, nil)
	return &CounterVec{vals: m.vals}
}

// Inc adds one to series i.
func (v *CounterVec) Inc(i int) { v.vals[i].Add(1) }

// Add adds n to series i.
func (v *CounterVec) Add(i int, n int64) { v.vals[i].Add(n) }

// Value reads series i.
func (v *CounterVec) Value(i int) int64 { return v.vals[i].Load() }

// Len is the number of series.
func (v *CounterVec) Len() int { return len(v.vals) }

// Sum totals every series.
func (v *CounterVec) Sum() int64 {
	var n int64
	for i := range v.vals {
		n += v.vals[i].Load()
	}
	return n
}

// Gauge is a scalar that can move both ways.
type Gauge struct{ v *atomic.Int64 }

// NewGauge registers (or fetches) a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	m := r.register(name, help, KindGauge, "", nil, nil)
	return &Gauge{v: &m.vals[0]}
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations. Bucket
// bounds are fixed at registration, so the exposition shape — like
// everything else here — is a constant of the build, not of the data.
type Histogram struct{ m *metric }

// NewHistogram registers (or fetches) a histogram with the given
// inclusive upper bounds (strictly increasing; an implicit +Inf bucket
// is always appended).
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs buckets", name))
	}
	m := r.register(name, help, KindHistogram, "", nil, bounds)
	return &Histogram{m: m}
}

// Observe records one value. Linear scan over the (short, fixed)
// bounds, then two atomic adds — no allocation.
func (h *Histogram) Observe(v int64) {
	m := h.m
	i := 0
	for i < len(m.bounds) && v > m.bounds[i] {
		i++
	}
	m.counts[i].Add(1)
	m.sum.Add(v)
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.m.counts {
		n += h.m.counts[i].Load()
	}
	return n
}

// Sum is the running total of observed values.
func (h *Histogram) Sum() int64 { return h.m.sum.Load() }

// Timer measures elapsed time on an injected clock and records it into
// a histogram in whole milliseconds. Under a netsim.ManualClock the
// elapsed time is logical — frozen-clock sections observe exactly 0 —
// so timer output is deterministic; under a real clock it behaves like
// an ordinary latency timer. Timer is a value: starting and stopping
// allocate nothing.
type Timer struct {
	h     *Histogram
	clock Clock
	start time.Time
}

// StartTimer begins timing on the given clock.
func StartTimer(h *Histogram, clock Clock) Timer {
	return Timer{h: h, clock: clock, start: clock.Now()}
}

// Stop records the elapsed logical time in milliseconds.
func (t Timer) Stop() {
	t.h.Observe(t.clock.Now().Sub(t.start).Milliseconds())
}

// DurationMS converts a duration to the millisecond unit histograms
// record (for stamped — not slept — delays).
func DurationMS(d time.Duration) int64 { return d.Milliseconds() }
