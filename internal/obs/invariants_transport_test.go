package obs_test

// The wire transport's conservation laws. The client and server each
// keep framed-byte and request ledgers on their own registries; after
// a campaign whose control plane crossed a real loopback socket — with
// a node kill and a control-plane partition in flight — the two sides'
// books must agree exactly:
//
//	client attempts == client calls + client retries
//	client attempts == server requests + client net failures
//	client errors   == server non-200 responses
//	client bytes out == server bytes in   (and vice versa)
//
// The byte laws hold because both sides count whole frames with the
// same formula (body + 12); nothing is sampled or estimated.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ntpscan/internal/chaos"
	"ntpscan/internal/cluster"
	"ntpscan/internal/cluster/transport"
	"ntpscan/internal/core"
	"ntpscan/internal/netsim"
	"ntpscan/internal/obs"
)

func sumSeries(t *testing.T, snap map[string][]int64, key string) int64 {
	t.Helper()
	vals, ok := snap[key]
	if !ok {
		t.Fatalf("metric series %q not registered", key)
	}
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

func TestWireConservationUnderChaos(t *testing.T) {
	chaos.NoGoroutineLeaks(t)
	const nodes = 3
	for _, seed := range chaos.Seeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var baseOut bytes.Buffer
			base := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.DefaultSpec())
			if _, err := base.RunCampaign(context.Background(), core.CampaignOpts{Out: &baseOut}); err != nil {
				t.Fatal(err)
			}

			p := chaos.FaultedPipeline(chaos.Config(seed), seed+1, chaos.NodeLossSpec(nodes, 1))
			// Pin a control-plane partition so zombie submissions cross
			// the wire and come back fenced.
			from, _ := p.SliceWindow(40)
			until, _ := p.SliceWindow(52)
			p.Cfg.Faults.AddNode(netsim.NodeFault{
				Kind: netsim.NodePartition, Node: 2, From: from, Until: until,
			})

			coord, err := cluster.NewCoordinator(p, cluster.Config{Nodes: nodes})
			if err != nil {
				t.Fatal(err)
			}
			serverReg := obs.NewRegistry()
			ep, err := transport.ListenLoopback(transport.NewServer(coord, serverReg))
			if err != nil {
				t.Fatal(err)
			}
			clientReg := obs.NewRegistry()
			coord.SetDial(transport.Dial(ep.URL, clientReg))

			var out bytes.Buffer
			if _, err := coord.Run(context.Background(), core.CampaignOpts{Out: &out}); err != nil {
				t.Fatal(err)
			}
			// Drain in-flight handlers before reading the server's books.
			if err := ep.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), baseOut.Bytes()) {
				t.Errorf("socket campaign output diverges from single-process run (%d vs %d bytes)",
					out.Len(), baseOut.Len())
			}

			cs, ss := clientReg.Snapshot(), serverReg.Snapshot()
			calls := sumSeries(t, cs, "transport_client_calls_total")
			clientErrs := sumSeries(t, cs, "transport_client_errors_total")
			attempts := sumSeries(t, cs, "transport_client_attempts_total")
			retries := sumSeries(t, cs, "transport_client_retries_total")
			netFails := sumSeries(t, cs, "transport_client_net_failures_total")
			cBytesOut := sumSeries(t, cs, "transport_client_bytes_out_total")
			cBytesIn := sumSeries(t, cs, "transport_client_bytes_in_total")
			requests := sumSeries(t, ss, "transport_server_requests_total")
			serverErrs := sumSeries(t, ss, "transport_server_errors_total")
			sBytesIn := sumSeries(t, ss, "transport_server_bytes_in_total")
			sBytesOut := sumSeries(t, ss, "transport_server_bytes_out_total")

			if calls == 0 {
				t.Fatal("no control calls crossed the wire")
			}
			if attempts != calls+retries {
				t.Errorf("attempt law violated: attempts %d != calls %d + retries %d",
					attempts, calls, retries)
			}
			if attempts != requests+netFails {
				t.Errorf("delivery law violated: attempts %d != server requests %d + net failures %d",
					attempts, requests, netFails)
			}
			// A loopback socket with no process restarts loses nothing.
			if retries != 0 || netFails != 0 {
				t.Errorf("clean-socket run recorded %d retries / %d net failures, want 0/0",
					retries, netFails)
			}
			if clientErrs != serverErrs {
				t.Errorf("error books disagree: client %d != server %d", clientErrs, serverErrs)
			}
			if clientErrs == 0 {
				t.Error("no errors crossed the wire — the partition's zombies never fenced")
			}
			if cBytesOut != sBytesIn {
				t.Errorf("request byte law violated: client sent %d, server read %d", cBytesOut, sBytesIn)
			}
			if cBytesIn != sBytesOut {
				t.Errorf("response byte law violated: server wrote %d, client read %d", sBytesOut, cBytesIn)
			}

			// The cluster's own ledger still balances with its control
			// plane behind the socket.
			claimed, completed, fenced, lost := coord.TaskCounts()
			if claimed != completed+fenced+lost {
				t.Errorf("cluster task conservation violated over the wire: claimed %d != completed %d + fenced %d + lost %d",
					claimed, completed, fenced, lost)
			}
			if fenced == 0 {
				t.Error("no epoch rejections — fencing never exercised the socket")
			}
			t.Logf("wire books: %d calls, %d errors, %d bytes out / %d bytes in",
				calls, clientErrs, cBytesOut, cBytesIn)
		})
	}
}
