package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds one metric of every shape with fixed values, so
// the fixtures cover every exposition branch.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.NewCounter("scan_completed_total", "targets fully scanned").Add(1234)
	r.NewGauge("breaker_open", "modules currently open").Set(2)
	vec := r.NewCounterVec("capture_events_total", "captures per vantage", "vantage", []string{"DE", "US"})
	vec.Add(0, 40)
	vec.Add(1, 2)
	h := r.NewHistogram("scan_retry_backoff_ms", "stamped retry backoff", []int64{250, 500, 1000})
	for _, v := range []int64{100, 250, 900, 5000} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverges from golden:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "exposition.golden", buf.Bytes())

	// Exposition is read-only: a second write is byte-identical.
	var again bytes.Buffer
	r := goldenRegistry()
	_ = r.WritePrometheus(&again)
	again.Reset()
	_ = r.WritePrometheus(&again)
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Error("repeated exposition writes diverge")
	}
}

func TestTelemetryLineGolden(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	tw := NewTelemetryWriter(r, &buf)
	at := time.Date(2025, 6, 1, 0, 15, 0, 0, time.UTC)
	if err := tw.WriteSlice(0, at); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteSlice(1, at.Add(15*time.Minute)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "telemetry.golden", buf.Bytes())
}
