package geo

import (
	"net/netip"
	"testing"
)

func TestAddCountryAndLookup(t *testing.T) {
	d := NewDB()
	d.AddCountry(Country{Code: "DE", Name: "Germany", RoutedV6: 10, PoolServers: 50})
	c, ok := d.Country("DE")
	if !ok || c.Name != "Germany" {
		t.Fatalf("Country = %+v %v", c, ok)
	}
	if _, ok := d.Country("XX"); ok {
		t.Fatal("unknown country resolved")
	}
}

func TestLocateLongestMatch(t *testing.T) {
	d := NewDB()
	d.MapPrefix(netip.MustParsePrefix("2001:db8::/32"), "DE")
	d.MapPrefix(netip.MustParsePrefix("2001:db8:1::/48"), "NL")
	if code, ok := d.Locate(netip.MustParseAddr("2001:db8:1::1")); !ok || code != "NL" {
		t.Fatalf("Locate = %q %v", code, ok)
	}
	if code, ok := d.Locate(netip.MustParseAddr("2001:db8:2::1")); !ok || code != "DE" {
		t.Fatalf("Locate = %q %v", code, ok)
	}
	if _, ok := d.Locate(netip.MustParseAddr("2001:dead::1")); ok {
		t.Fatal("unmapped space located")
	}
}

func TestUnderservedScore(t *testing.T) {
	many := Country{RoutedV6: 100, PoolServers: 100}
	few := Country{RoutedV6: 100, PoolServers: 2}
	none := Country{RoutedV6: 100, PoolServers: 0}
	if few.UnderservedScore() <= many.UnderservedScore() {
		t.Fatal("fewer servers should score higher")
	}
	if none.UnderservedScore() != 100 {
		t.Fatalf("zero-server score = %v", none.UnderservedScore())
	}
}

func TestMostUnderserved(t *testing.T) {
	d := NewDB()
	d.AddCountry(Country{Code: "IN", RoutedV6: 1000, PoolServers: 5})
	d.AddCountry(Country{Code: "DE", RoutedV6: 500, PoolServers: 500})
	d.AddCountry(Country{Code: "BR", RoutedV6: 400, PoolServers: 4})
	top := d.MostUnderserved(2)
	if len(top) != 2 || top[0].Code != "IN" || top[1].Code != "BR" {
		t.Fatalf("MostUnderserved = %v %v", top[0].Code, top[1].Code)
	}
	all := d.MostUnderserved(10)
	if len(all) != 3 {
		t.Fatalf("over-request returned %d", len(all))
	}
}

func TestMostUnderservedTieBreak(t *testing.T) {
	d := NewDB()
	d.AddCountry(Country{Code: "BB", RoutedV6: 10, PoolServers: 1})
	d.AddCountry(Country{Code: "AA", RoutedV6: 10, PoolServers: 1})
	top := d.MostUnderserved(2)
	if top[0].Code != "AA" {
		t.Fatalf("tie break wrong: %v", top[0].Code)
	}
}

func TestCountriesSorted(t *testing.T) {
	d := NewDB()
	for _, c := range []string{"ZA", "AU", "JP"} {
		d.AddCountry(Country{Code: c})
	}
	cs := d.Countries()
	if cs[0].Code != "AU" || cs[1].Code != "JP" || cs[2].Code != "ZA" {
		t.Fatalf("order: %v %v %v", cs[0].Code, cs[1].Code, cs[2].Code)
	}
}

func TestMapPrefixMasksHostBits(t *testing.T) {
	d := NewDB()
	d.MapPrefix(netip.PrefixFrom(netip.MustParseAddr("2001:db8::1"), 32), "JP")
	if code, ok := d.Locate(netip.MustParseAddr("2001:db8:ffff::2")); !ok || code != "JP" {
		t.Fatalf("Locate after unmasked MapPrefix = %q %v", code, ok)
	}
}
