// Package geo provides the geolocation substrate: a GeoLite2-equivalent
// prefix→country database and a country registry carrying the statistics
// the paper's vantage-point selection uses (§3.1: deploy NTP servers in
// countries with few existing pool servers relative to their routed IPv6
// address space).
package geo

import (
	"net/netip"
	"sort"
)

// Country is one country record with the metrics relevant to vantage
// selection.
type Country struct {
	Code string // ISO 3166-1 alpha-2
	Name string
	// RoutedV6 is the relative amount of routed IPv6 address space
	// (arbitrary units; only ratios matter).
	RoutedV6 float64
	// PoolServers is the number of NTP Pool servers already serving the
	// country's zone before our deployment.
	PoolServers int
	// Population is the relative number of IPv6-active client devices.
	Population float64
}

// UnderservedScore is routed space per existing pool server; the paper's
// deployment targets countries where this is high. A country with zero
// servers scores as if it had one (the pool never maps an empty zone to
// nothing — clients fall back to the continent zone).
func (c Country) UnderservedScore() float64 {
	servers := c.PoolServers
	if servers < 1 {
		servers = 1
	}
	return c.RoutedV6 / float64(servers)
}

// DB is the combined country registry and prefix→country mapping.
type DB struct {
	countries map[string]*Country
	tables    map[int]map[netip.Prefix]string
	lengths   []int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		countries: make(map[string]*Country),
		tables:    make(map[int]map[netip.Prefix]string),
	}
}

// AddCountry registers a country record.
func (d *DB) AddCountry(c Country) *Country {
	stored := c
	d.countries[c.Code] = &stored
	return &stored
}

// Country returns a registered country.
func (d *DB) Country(code string) (*Country, bool) {
	c, ok := d.countries[code]
	return c, ok
}

// Countries returns all registered countries sorted by code.
func (d *DB) Countries() []*Country {
	out := make([]*Country, 0, len(d.countries))
	for _, c := range d.countries {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// MapPrefix assigns all addresses under p to a country, GeoLite2-style.
func (d *DB) MapPrefix(p netip.Prefix, code string) {
	p = p.Masked()
	bits := p.Bits()
	tbl, ok := d.tables[bits]
	if !ok {
		tbl = make(map[netip.Prefix]string)
		d.tables[bits] = tbl
		d.lengths = append(d.lengths, bits)
		sort.Sort(sort.Reverse(sort.IntSlice(d.lengths)))
	}
	tbl[p] = code
}

// Locate returns the country code for addr via longest prefix match.
func (d *DB) Locate(addr netip.Addr) (string, bool) {
	for _, bits := range d.lengths {
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if code, ok := d.tables[bits][p]; ok {
			return code, true
		}
	}
	return "", false
}

// MostUnderserved returns the n countries with the highest
// UnderservedScore, the selection rule for vantage deployment. Ties break
// by country code for determinism.
func (d *DB) MostUnderserved(n int) []*Country {
	cs := d.Countries()
	sort.SliceStable(cs, func(i, j int) bool {
		si, sj := cs[i].UnderservedScore(), cs[j].UnderservedScore()
		if si != sj {
			return si > sj
		}
		return cs[i].Code < cs[j].Code
	})
	if len(cs) > n {
		cs = cs[:n]
	}
	return cs
}
