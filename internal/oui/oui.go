// Package oui models the IEEE MA-L (OUI) registry used by the paper's
// Appendix B to attribute EUI-64-embedded MAC addresses to hardware
// vendors. The registry API mirrors a real IEEE database lookup; the
// assignments themselves are synthetic but stable, with the vendor
// population following the paper's Table 4.
package oui

import (
	"hash/fnv"
	"sort"

	"ntpscan/internal/ipv6x"
)

// Registry maps OUIs (24-bit prefixes of universally administered MACs)
// to the registering organisation's name.
type Registry struct {
	byOUI    map[[3]byte]string
	byVendor map[string][][3]byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byOUI:    make(map[[3]byte]string),
		byVendor: make(map[string][][3]byte),
	}
}

// Register assigns an OUI to a vendor. The U/L and I/G bits of the first
// octet are cleared, as the IEEE only assigns universally administered
// unicast blocks. Re-registering an OUI overwrites the previous owner.
func (r *Registry) Register(vendor string, oui [3]byte) {
	oui[0] &^= 0x03
	if prev, ok := r.byOUI[oui]; ok && prev != vendor {
		// Remove from the previous vendor's list.
		lst := r.byVendor[prev]
		for i, o := range lst {
			if o == oui {
				r.byVendor[prev] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	r.byOUI[oui] = vendor
	r.byVendor[vendor] = append(r.byVendor[vendor], oui)
}

// Allocate deterministically derives n fresh OUIs for a vendor from the
// vendor name and registers them. Calling it twice for the same vendor
// extends the allocation (the derivation is indexed, so existing blocks
// are regenerated identically and skipped).
func (r *Registry) Allocate(vendor string, n int) [][3]byte {
	out := make([][3]byte, 0, n)
	for i := 0; len(out) < n; i++ {
		oui := deriveOUI(vendor, i)
		if owner, taken := r.byOUI[oui]; taken {
			if owner == vendor {
				out = append(out, oui)
			}
			continue
		}
		r.Register(vendor, oui)
		out = append(out, oui)
	}
	return out
}

// deriveOUI hashes (vendor, index) into a universally administered
// unicast OUI.
func deriveOUI(vendor string, idx int) [3]byte {
	h := fnv.New64a()
	h.Write([]byte(vendor))
	h.Write([]byte{byte(idx), byte(idx >> 8)})
	v := h.Sum64()
	return [3]byte{byte(v) &^ 0x03, byte(v >> 8), byte(v >> 16)}
}

// Lookup returns the vendor registered for the MAC's OUI.
func (r *Registry) Lookup(mac ipv6x.MAC) (vendor string, ok bool) {
	vendor, ok = r.byOUI[mac.OUI()]
	return vendor, ok
}

// LookupOUI returns the vendor for a raw OUI value.
func (r *Registry) LookupOUI(oui [3]byte) (vendor string, ok bool) {
	oui[0] &^= 0x03
	vendor, ok = r.byOUI[oui]
	return vendor, ok
}

// OUIs returns the blocks registered to a vendor, in registration order.
func (r *Registry) OUIs(vendor string) [][3]byte {
	return r.byVendor[vendor]
}

// Vendors returns all registered vendor names, sorted.
func (r *Registry) Vendors() []string {
	out := make([]string, 0, len(r.byVendor))
	for v := range r.byVendor {
		if len(r.byVendor[v]) > 0 {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered OUI blocks.
func (r *Registry) Len() int { return len(r.byOUI) }

// Vendor names from the paper's Table 4 (top manufacturers by embedded
// MAC count). The two AVM entries are distinct registry rows in the IEEE
// database and in the paper; both identify FRITZ! products.
const (
	VendorAVMMarketing = "AVM Audiovisuelles Marketing und Computersysteme GmbH"
	VendorAVM          = "AVM GmbH"
	VendorAmazon       = "Amazon Technologies Inc."
	VendorSamsung      = "Samsung Electronics Co.,Ltd"
	VendorSonos        = "Sonos, Inc."
	VendorVivo         = "vivo Mobile Communication Co., Ltd."
	VendorOgemray      = "Shenzhen Ogemray Technology Co.,Ltd"
	VendorChinaDragon  = "China Dragon Technology Limited"
	VendorOppo         = "GUANGDONG OPPO MOBILE TELECOMMUNICATIONS CORP.,LTD"
	VendorIComm        = "Shenzhen iComm Semiconductor CO.,LTD"
	VendorHaierMM      = "Qingdao Haier Multimedia Limited."
	VendorHaierTel     = "QING DAO HAIER TELECOM CO.,LTD."
	VendorGaoshengda   = "Hui Zhou Gaoshengda Technology Co.,LTD"
	VendorFiberhome    = "Fiberhome Telecommunication Technologies Co.,LTD"
	VendorTenda        = "Tenda Technology Co.,Ltd.Dongguan branch"
	VendorXiaomi       = "Beijing Xiaomi Electronics Co.,Ltd"
	VendorEarda        = "Earda Technologies co Ltd"
	VendorShiyuan      = "Guangzhou Shiyuan Electronics Co., Ltd."
	VendorCultraview   = "Shenzhen Cultraview Digital Technology Co., Ltd"
	VendorRaspberryPi  = "Raspberry Pi Trading Ltd"
	VendorCisco        = "Cisco Systems, Inc"
	VendorDLink        = "D-Link International"
)

// Default returns a registry populated with the Table 4 vendor set. Block
// counts loosely reflect each vendor's real registry footprint (AVM holds
// many blocks; small ODMs hold one or two).
func Default() *Registry {
	r := NewRegistry()
	for _, v := range []struct {
		name   string
		blocks int
	}{
		{VendorAVMMarketing, 24},
		{VendorAVM, 8},
		{VendorAmazon, 16},
		{VendorSamsung, 24},
		{VendorSonos, 4},
		{VendorVivo, 8},
		{VendorOgemray, 2},
		{VendorChinaDragon, 2},
		{VendorOppo, 8},
		{VendorIComm, 2},
		{VendorHaierMM, 2},
		{VendorHaierTel, 2},
		{VendorGaoshengda, 2},
		{VendorFiberhome, 4},
		{VendorTenda, 2},
		{VendorXiaomi, 8},
		{VendorEarda, 1},
		{VendorShiyuan, 2},
		{VendorCultraview, 2},
		{VendorRaspberryPi, 4},
		{VendorCisco, 24},
		{VendorDLink, 8},
	} {
		r.Allocate(v.name, v.blocks)
	}
	return r
}
