package oui

import (
	"testing"

	"ntpscan/internal/ipv6x"
)

func TestRegisterLookup(t *testing.T) {
	r := NewRegistry()
	r.Register("Acme", [3]byte{0x00, 0x11, 0x22})
	mac := ipv6x.MAC{0x00, 0x11, 0x22, 0xaa, 0xbb, 0xcc}
	v, ok := r.Lookup(mac)
	if !ok || v != "Acme" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if _, ok := r.Lookup(ipv6x.MAC{0xde, 0xad, 0xbe, 0, 0, 0}); ok {
		t.Fatal("unknown OUI resolved")
	}
}

func TestRegisterClearsFlagBits(t *testing.T) {
	r := NewRegistry()
	r.Register("Acme", [3]byte{0x03, 0x11, 0x22}) // U/L + I/G set
	// A locally-administered MAC in the "same" block still resolves,
	// because both sides mask the flag bits.
	if _, ok := r.LookupOUI([3]byte{0x02, 0x11, 0x22}); !ok {
		t.Fatal("flag-bit masking broken")
	}
	if got := r.OUIs("Acme")[0]; got != [3]byte{0x00, 0x11, 0x22} {
		t.Fatalf("stored OUI = %v", got)
	}
}

func TestReRegisterMovesOwnership(t *testing.T) {
	r := NewRegistry()
	oui := [3]byte{0x00, 0xaa, 0xbb}
	r.Register("A", oui)
	r.Register("B", oui)
	if v, _ := r.LookupOUI(oui); v != "B" {
		t.Fatalf("owner = %q", v)
	}
	if len(r.OUIs("A")) != 0 {
		t.Fatalf("A retained %v", r.OUIs("A"))
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestAllocateDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	oa := a.Allocate("Vendor X", 5)
	ob := b.Allocate("Vendor X", 5)
	if len(oa) != 5 || len(ob) != 5 {
		t.Fatalf("allocated %d/%d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("allocation not deterministic at %d: %v vs %v", i, oa[i], ob[i])
		}
	}
}

func TestAllocateExtends(t *testing.T) {
	r := NewRegistry()
	first := r.Allocate("V", 2)
	again := r.Allocate("V", 2)
	// Re-allocating the same count returns the same blocks.
	if first[0] != again[0] || first[1] != again[1] {
		t.Fatalf("re-allocation differs: %v vs %v", first, again)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d after idempotent allocate", r.Len())
	}
}

func TestAllocatedOUIsAreUnicastUniversal(t *testing.T) {
	r := NewRegistry()
	for _, oui := range r.Allocate("V", 50) {
		if oui[0]&0x03 != 0 {
			t.Fatalf("OUI %v has flag bits set", oui)
		}
	}
}

func TestDefaultRegistry(t *testing.T) {
	r := Default()
	if r.Len() == 0 {
		t.Fatal("empty default registry")
	}
	for _, vendor := range []string{VendorAVMMarketing, VendorAVM, VendorAmazon, VendorRaspberryPi} {
		ouis := r.OUIs(vendor)
		if len(ouis) == 0 {
			t.Fatalf("vendor %q has no blocks", vendor)
		}
		if v, ok := r.LookupOUI(ouis[0]); !ok || v != vendor {
			t.Fatalf("round trip for %q failed: %q %v", vendor, v, ok)
		}
	}
	// AVM Marketing holds the largest allocation, matching its Table 4
	// dominance.
	if len(r.OUIs(VendorAVMMarketing)) < len(r.OUIs(VendorSonos)) {
		t.Fatal("AVM should hold more blocks than Sonos")
	}
}

func TestVendorsSorted(t *testing.T) {
	r := Default()
	vs := r.Vendors()
	for i := 1; i < len(vs); i++ {
		if vs[i-1] > vs[i] {
			t.Fatalf("Vendors not sorted: %q > %q", vs[i-1], vs[i])
		}
	}
}

func TestEmbedExtractLookupEndToEnd(t *testing.T) {
	// A MAC from a default-registry block must survive EUI-64 embedding
	// and still resolve to its vendor — the Appendix B pipeline.
	r := Default()
	block := r.OUIs(VendorSamsung)[0]
	mac := ipv6x.MAC{block[0], block[1], block[2], 0x12, 0x34, 0x56}
	addr := ipv6x.FromParts(0x20010db800010002, ipv6x.EmbedMAC(mac))
	got, ok := ipv6x.ExtractMAC(addr)
	if !ok {
		t.Fatal("extract failed")
	}
	v, ok := r.Lookup(got)
	if !ok || v != VendorSamsung {
		t.Fatalf("vendor = %q, %v", v, ok)
	}
	if !got.Universal() {
		t.Fatal("embedded MAC should be universally administered")
	}
}
