package ntpscan_test

import (
	"strings"
	"testing"

	"ntpscan"
)

func TestFacadeCollectExperiments(t *testing.T) {
	s := ntpscan.CollectExperiments(ntpscan.Options{
		Seed: 3, DeviceScale: 1e-3, AddrScale: 1e-6, ASScale: 0.02, Workers: 16,
	})
	out := s.Table1()
	if !strings.Contains(out, "IP addresses") {
		t.Fatalf("Table1 render broken:\n%s", out)
	}
	if s.P.Summary.Set().Len() == 0 {
		t.Fatal("no addresses collected through the facade")
	}
}

func TestFacadePipeline(t *testing.T) {
	p := ntpscan.NewPipeline(ntpscan.Config{
		Seed: 4,
		World: ntpscan.WorldConfig{
			DeviceScale: 1e-3, AddrScale: 1e-6, ASScale: 0.02,
		},
	})
	if len(p.Servers) != 11 {
		t.Fatalf("servers = %d", len(p.Servers))
	}
}

func TestFacadeDetectScanners(t *testing.T) {
	res := ntpscan.DetectScanners(5)
	if len(res.Report.Campaigns) != 2 {
		t.Fatalf("campaigns = %d", len(res.Report.Campaigns))
	}
	if !strings.Contains(res.Rendered, "telescope") {
		t.Fatal("render broken")
	}
}
